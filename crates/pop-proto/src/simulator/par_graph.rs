//! Sharded multi-core exact simulator for graph-restricted schedulers.
//!
//! # Position-derived draws
//!
//! The scalar [`GraphSimulator`](super::GraphSimulator) consumes its RNG
//! sequentially: draw `j` depends on draws `0..j` having been made. That
//! serial dependency is the whole obstacle to parallel application, so
//! this engine removes it at the source. A dense **block** of `B`
//! scheduled interactions takes *one* word from the driver RNG (the
//! `block_seed`) and derives draw `j` as a pure function of
//! `(block_seed, j)`: a fresh [`SimRng`] seeded with
//! `derive_seed(block_seed, j)` yields the uniform edge index and the
//! uniform orientation bit. Every position's draw can therefore be
//! computed by any thread, in any order, and the result is a fixed
//! function of the driver RNG stream — **bit-identical for any thread
//! count**, including one. The induced law is exactly the
//! [`GraphScheduler`](crate::scheduler::GraphScheduler) law (uniform
//! edge, then uniform orientation, independently per position); only the
//! bitstream differs from the scalar engine, the same "identical in law,
//! different stream" contract the batch engines already carry, pinned by
//! KS tests.
//!
//! # Domain decomposition
//!
//! At construction the vertices are renumbered by BFS order from vertex 0
//! (a BFS forest on disconnected graphs) and cut into `D` contiguous
//! **domains** — BFS order makes the ranges spatially coherent, so cycle
//! arcs and torus tiles fall out of the same machinery that hash/BFS-cuts
//! d-regular and G(n, p) graphs. `D` is a pure function of `n` (never of
//! the thread count) and every cut point is a multiple of 64, so a
//! domain's vertices occupy whole words of the dirty bitmap below. Edges
//! are reordered interior-per-domain-contiguous with the cross-domain
//! **boundary** edges last, so a drawn edge index classifies into its
//! domain by a binary search over `D + 1` offsets.
//!
//! # Block execution
//!
//! Each dense block runs four phases on the persistent
//! [`WorkerPool`](sim_stats::threads::WorkerPool):
//!
//! 1. **bucket** (parallel): `D` position chunks derive their draws and
//!    bucket them per domain, boundary draws aside;
//! 2. **pre-mark** (sequential): every boundary draw marks both endpoints
//!    in the dirty bitmap — interior draws that touch them must not be
//!    applied out of schedule order;
//! 3. **interior** (parallel, one task per domain): each domain applies
//!    its draws *in position order* against the shared state array. A
//!    draw touching a dirty vertex is **deferred** and marks its own
//!    endpoints dirty (transitive contamination), so nothing applied in
//!    this phase shares a vertex with any earlier-position deferred or
//!    boundary draw. Per-domain count deltas and effective counts
//!    accumulate in per-domain scratch;
//! 4. **replay** (sequential): deferred and boundary draws are merged,
//!    sorted by position, and replayed literally in schedule order — the
//!    batched-graph matching/dirty-bitmap conflict idea, applied across
//!    domains instead of within a block.
//!
//! Phase 3 applies only draws that commute (vertex-disjointness) with
//! every replayed draw scheduled before them, and both phases preserve
//! position order among draws that share a vertex, so the block's final
//! configuration — and each draw's effectiveness — is identical to
//! applying the derived draw sequence one by one. The observation
//! granularity is the block boundary (like the other leaping engines);
//! within a domain, bits of the dirty bitmap are touched by exactly one
//! worker (boundary pre-marking happens before the parallel phase), so
//! the phases are race-free by construction, not by locking.
//!
//! # Sparse endgame
//!
//! A dense block that applies zero effective draws counts its whole
//! length as a no-op run; once [`SPARSE_TRIGGER_NOOPS`] accumulate, the
//! engine scans the per-edge active-orientation weights and hands off to
//! the shared [`SparseSkipper`](super::sparse) exactly as the scalar
//! graph engines do — low-activity endgames are a serial workload and get
//! the serial machinery, with the same hysteresis exit back to dense
//! blocks. Silence certification (`W = 0`) and the clock-stop contract
//! are inherited unchanged.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::RwLock;

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::config::CountConfig;
use crate::graph::Graph;
use crate::protocol::Protocol;
use crate::simulator::graphwise::shuffled_layout;
use crate::simulator::sparse::{orient_event, SparseSkipper, SparseStep, SPARSE_TRIGGER_NOOPS};
use crate::simulator::{snapshot_tags, Simulator};
use crate::telemetry::timeline::EventHistograms;
use crate::telemetry::EngineTelemetry;
use sim_stats::rng::{derive_seed, SimRng};
use sim_stats::threads::WorkerPool;

/// One derived scheduled interaction: its position in the block, the
/// drawn edge (index into the reordered edge array), and the drawn
/// orientation (`fwd` = stored endpoint order).
#[derive(Debug, Clone, Copy)]
struct Draw {
    pos: u32,
    edge: u32,
    fwd: bool,
}

/// Per-chunk bucketing scratch (phase 1 output), reused across blocks.
#[derive(Debug, Default)]
struct ChunkScratch {
    /// Interior draws bucketed per domain, positions ascending.
    per_dom: Vec<Vec<Draw>>,
    /// Boundary draws, positions ascending.
    boundary: Vec<Draw>,
}

impl ChunkScratch {
    fn clear(&mut self, domains: usize) {
        self.per_dom.resize_with(domains, Vec::new);
        for v in &mut self.per_dom {
            v.clear();
        }
        self.boundary.clear();
    }
}

/// Per-domain application scratch (phase 3 output), reused across blocks.
#[derive(Debug, Default)]
struct DomScratch {
    /// Draws deferred to the replay phase, positions ascending.
    deferred: Vec<Draw>,
    /// Signed per-state count delta of the draws applied here.
    delta: Vec<i64>,
    /// Effective draws applied here.
    effective: u64,
    /// Draws applied here (effective or not).
    applied: u64,
    /// Block position of the last *effective* draw applied here (−1 if
    /// none) — feeds the terminal-block clock truncation.
    last_eff: i64,
}

impl DomScratch {
    fn clear(&mut self, k: usize) {
        self.deferred.clear();
        self.delta.clear();
        self.delta.resize(k, 0);
        self.effective = 0;
        self.applied = 0;
        self.last_eff = -1;
    }
}

/// Number of domains for an `n`-vertex graph: one per ~4096 vertices,
/// capped at 64 — a pure function of `n`, never of the thread count, so
/// the draw→domain assignment (and with it the trajectory) is identical
/// however many workers participate.
fn domain_count(n: usize) -> usize {
    (n / 4096).clamp(1, 64)
}

/// Dense block length for an `m`-edge graph. Larger blocks amortize the
/// fan-out; smaller ones bound the conflict (replay) fraction, which
/// grows with the square of the block length over the edge count.
fn block_len_for(m: usize) -> usize {
    (m / 16).clamp(256, 16_384)
}

/// Apply one oriented pair `(i → j)` against the shared state array,
/// accumulating into a scratch delta; returns whether it was effective.
/// Positions applied concurrently are vertex-disjoint by the deferral
/// invariant, so the relaxed loads see exactly the values this domain's
/// own earlier draws stored.
#[inline]
fn apply_scratch(
    states: &[AtomicU32],
    table: &[(u32, u32)],
    noop: &[bool],
    k: usize,
    i: usize,
    j: usize,
    delta: &mut [i64],
) -> bool {
    let si = states[i].load(Ordering::Relaxed) as usize;
    let sj = states[j].load(Ordering::Relaxed) as usize;
    if noop[si * k + sj] {
        return false;
    }
    let (ti, tj) = table[si * k + sj];
    states[i].store(ti, Ordering::Relaxed);
    states[j].store(tj, Ordering::Relaxed);
    delta[si] -= 1;
    delta[sj] -= 1;
    delta[ti as usize] += 1;
    delta[tj as usize] += 1;
    true
}

/// Derive the scheduled draw at `pos` of the block seeded `block_seed`:
/// a uniform edge index in `0..m` and a uniform orientation — the
/// [`GraphScheduler`](crate::scheduler::GraphScheduler) law, as a pure
/// function of `(block_seed, pos)`.
#[inline]
fn derive_draw(block_seed: u64, pos: u32, m: usize) -> Draw {
    let mut r = SimRng::new(derive_seed(block_seed, pos as u64));
    let edge = r.index(m) as u32;
    let fwd = r.bernoulli(0.5);
    Draw { pos, edge, fwd }
}

/// Sharded multi-core exact simulator for a fixed interaction graph.
///
/// Identical in law to [`GraphSimulator`](super::GraphSimulator) (uniform
/// edge + uniform orientation per scheduled interaction) with a different
/// bitstream: dense stretches advance in position-derived blocks applied
/// across `D` spatial domains on the persistent
/// [`WorkerPool`](sim_stats::threads::WorkerPool), with cross-domain
/// conflicts replayed in schedule order; low-activity stretches hand off
/// to the shared sparse skipper. Trajectories are **bit-identical for any
/// thread count** — see the module docs for the phase machinery and the
/// exactness argument.
///
/// Observation granularity
/// ([`advance_observed`](crate::Simulator::advance_observed)): **block
/// checkpoints** in the dense phase (observers see configurations every
/// ≤ `B` scheduled interactions), exact per effective event in the sparse
/// phase.
#[derive(Debug)]
pub struct ParGraphSimulator<P: Protocol> {
    protocol: P,
    /// Worker-pool participants for the parallel phases (≥ 1; 1 = fully
    /// inline). Never affects the trajectory.
    threads: usize,
    /// Reordered edge list: interior edges grouped per domain, boundary
    /// edges last. Endpoints are internal (BFS-renumbered) vertex ids.
    edges: Vec<(u32, u32)>,
    /// CSR adjacency offsets over internal ids (sparse-phase refresh).
    offsets: Vec<u32>,
    /// CSR adjacency entries: `(neighbor, reordered edge index)`.
    adj: Vec<(u32, u32)>,
    /// Domain vertex-range cuts (`D + 1` entries, each a multiple of 64
    /// except the last).
    dom_start: Vec<u32>,
    /// Interior-edge spans per domain (`D + 1` entries); boundary edges
    /// occupy `edge_off[D]..m`.
    edge_off: Vec<u32>,
    /// Agent states in internal (BFS) order, shared with the parallel
    /// interior phase. Relaxed atomics: the deferral invariant makes all
    /// concurrent accesses vertex-disjoint.
    states: Vec<AtomicU32>,
    counts: Vec<u64>,
    /// Shared sparse-phase engine (see [`GraphSimulator`]); `None` while
    /// dense blocks run.
    sparse: Option<SparseSkipper>,
    /// Accumulated zero-effective dense draws (sparse trigger).
    noop_run: u32,
    k: usize,
    interactions: u64,
    effective_interactions: u64,
    table: Vec<(u32, u32)>,
    noop: Vec<bool>,
    /// Dense block length (pure function of the graph).
    block: usize,
    /// Phase-1 scratch, one slot per chunk (write-locked by its own
    /// chunk, read-locked by every domain in phase 3).
    chunk_scratch: Vec<RwLock<ChunkScratch>>,
    /// Phase-3 scratch, one slot per domain.
    dom_scratch: Vec<RwLock<DomScratch>>,
    /// Dirty vertex bitmap (one bit per internal vertex). Cleared
    /// per-block by walking the replay list, not the whole bitmap.
    dirty: Vec<AtomicU64>,
    /// Replay-phase merge buffer, reused across blocks.
    replay: Vec<Draw>,
    telemetry: EngineTelemetry,
    /// Per-event histograms (opt-in). The dense phase records block
    /// aggregates only (applied sizes, replay runs) — per-draw no-op runs
    /// are not observable from the parallel application, and recording
    /// them would force a serial path; `skip_len` is populated by the
    /// sparse phase alone.
    hist: Option<Box<EventHistograms>>,
}

impl<P: Protocol> ParGraphSimulator<P> {
    /// Create from explicit per-agent states (dense indices, in the
    /// graph's own vertex order) and a worker count. The graph must have
    /// at least one edge and as many vertices as there are states.
    pub fn new(protocol: P, graph: &Graph, states: Vec<usize>, threads: usize) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "agent count does not match graph vertex count"
        );
        assert!(graph.num_edges() > 0, "pargraph engine needs edges");
        let n = graph.n();
        let k = protocol.num_states();
        let mut table = Vec::with_capacity(k * k);
        let mut noop = Vec::with_capacity(k * k);
        for i in 0..k {
            for j in 0..k {
                let (a, b) = protocol.transition_indices(i, j);
                table.push((a as u32, b as u32));
                noop.push((a, b) == (i, j));
            }
        }

        // BFS renumbering (forest order on disconnected graphs): makes
        // contiguous id ranges spatially coherent, so the domain cuts
        // below are cycle arcs / torus tiles / BFS cuts by construction.
        let (g_offsets, g_adj) = graph.csr_adjacency();
        let order = bfs_order(n, &g_offsets, &g_adj);
        let mut perm = vec![0u32; n];
        for (new, &old) in order.iter().enumerate() {
            perm[old as usize] = new as u32;
        }

        let domains = domain_count(n);
        let mut dom_start = Vec::with_capacity(domains + 1);
        for d in 0..domains {
            // Cuts at multiples of 64 so a domain owns whole words of the
            // dirty bitmap. Domains hold ≥ 4096 vertices, so rounding
            // down keeps the cuts strictly increasing.
            dom_start.push(((n * d / domains) / 64 * 64) as u32);
        }
        dom_start.push(n as u32);

        // Classify and reorder edges: interior per domain, boundary last.
        let dom_of = |v: u32| dom_start.partition_point(|&s| s <= v) - 1;
        let mut interior: Vec<Vec<(u32, u32)>> = vec![Vec::new(); domains];
        let mut boundary: Vec<(u32, u32)> = Vec::new();
        for &(a, b) in graph.edges() {
            let (pa, pb) = (perm[a as usize], perm[b as usize]);
            let (da, db) = (dom_of(pa), dom_of(pb));
            if da == db {
                interior[da].push((pa, pb));
            } else {
                boundary.push((pa, pb));
            }
        }
        let mut edges = Vec::with_capacity(graph.num_edges());
        let mut edge_off = Vec::with_capacity(domains + 1);
        edge_off.push(0u32);
        for dom_edges in &interior {
            edges.extend_from_slice(dom_edges);
            edge_off.push(edges.len() as u32);
        }
        edges.extend_from_slice(&boundary);

        // CSR adjacency over internal ids and reordered edge indices
        // (the sparse phase's incident-edge refresh needs it).
        let mut degree = vec![0u32; n];
        for &(a, b) in &edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj = vec![(0u32, 0u32); edges.len() * 2];
        for (e, &(a, b)) in edges.iter().enumerate() {
            adj[cursor[a as usize] as usize] = (b, e as u32);
            cursor[a as usize] += 1;
            adj[cursor[b as usize] as usize] = (a, e as u32);
            cursor[b as usize] += 1;
        }

        let mut counts = vec![0u64; k];
        for &s in &states {
            assert!(s < k, "state index {s} out of range");
            counts[s] += 1;
        }
        let atomic_states: Vec<AtomicU32> = order
            .iter()
            .map(|&old| AtomicU32::new(states[old as usize] as u32))
            .collect();

        let block = block_len_for(edges.len());
        ParGraphSimulator {
            protocol,
            threads: threads.max(1),
            edges,
            offsets,
            adj,
            dom_start,
            edge_off,
            states: atomic_states,
            counts,
            sparse: None,
            noop_run: 0,
            k,
            interactions: 0,
            effective_interactions: 0,
            table,
            noop,
            block,
            chunk_scratch: (0..domains)
                .map(|_| RwLock::new(ChunkScratch::default()))
                .collect(),
            dom_scratch: (0..domains)
                .map(|_| RwLock::new(DomScratch::default()))
                .collect(),
            dirty: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            replay: Vec::new(),
            telemetry: EngineTelemetry::new(),
            hist: None,
        }
    }

    /// Create from a count configuration with a uniformly shuffled agent
    /// layout — the canonical initial law on real topologies (see
    /// [`GraphSimulator::from_config_shuffled`]).
    ///
    /// [`GraphSimulator::from_config_shuffled`]:
    ///     super::GraphSimulator::from_config_shuffled
    pub fn from_config_shuffled(
        protocol: P,
        graph: &Graph,
        config: &CountConfig,
        rng: &mut SimRng,
        threads: usize,
    ) -> Self {
        let states = shuffled_layout(config, rng);
        Self::new(protocol, graph, states, threads)
    }

    /// Number of spatial domains the graph was cut into.
    pub fn domains(&self) -> usize {
        self.dom_start.len() - 1
    }

    /// Worker-pool participants for the parallel phases.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of boundary (cross-domain) edges — the draws that always
    /// take the sequential replay path.
    pub fn boundary_edges(&self) -> usize {
        self.edges.len() - self.edge_off[self.domains()] as usize
    }

    /// Number of agents.
    pub fn population(&self) -> usize {
        self.states.len()
    }

    /// Per-state counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Current count configuration (copies counts).
    pub fn config(&self) -> CountConfig {
        CountConfig::from_counts(self.counts.clone())
    }

    /// Total interactions simulated (including no-ops).
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Interactions that changed the configuration.
    pub fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    /// Parallel time elapsed (= interactions / n).
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.states.len() as f64
    }

    /// Total number of active orientations `W` (0 iff silent). O(1) in
    /// the sparse phase; scans the edges in the dense phase.
    pub fn active_weight(&self) -> u64 {
        match &self.sparse {
            Some(s) => s.total(),
            None => (0..self.edges.len()).map(|e| self.edge_weight(e)).sum(),
        }
    }

    /// Whether the configuration is silent *for this graph* (`W = 0`);
    /// same phase split as [`GraphSimulator::is_silent`].
    ///
    /// [`GraphSimulator::is_silent`]: super::GraphSimulator::is_silent
    pub fn is_silent(&self) -> bool {
        match &self.sparse {
            Some(s) => s.total() == 0,
            None => self.protocol.is_silent(&self.counts),
        }
    }

    #[inline]
    fn state_of(&self, v: usize) -> usize {
        self.states[v].load(Ordering::Relaxed) as usize
    }

    #[inline]
    fn edge_weight(&self, e: usize) -> u64 {
        let (a, b) = self.edges[e];
        let sa = self.state_of(a as usize);
        let sb = self.state_of(b as usize);
        (!self.noop[sa * self.k + sb]) as u64 + (!self.noop[sb * self.k + sa]) as u64
    }

    /// Verify the sparse skipper (if live) against recomputed per-edge
    /// weights; `Ok` in the dense phase. O(m).
    #[doc(hidden)]
    pub fn validate_sparse_invariants(&self) -> Result<(), String> {
        match &self.sparse {
            None => Ok(()),
            Some(s) => {
                let truth: Vec<u64> = (0..self.edges.len()).map(|e| self.edge_weight(e)).collect();
                s.check_consistent(&truth)
            }
        }
    }

    /// Sequential oriented application with sparse-phase re-weighting —
    /// the literal-step path (mirrors [`GraphSimulator`]'s).
    ///
    /// [`GraphSimulator`]: super::GraphSimulator
    fn apply_oriented(&mut self, i: usize, j: usize) -> bool {
        let (si, sj) = (self.state_of(i), self.state_of(j));
        if self.noop[si * self.k + sj] {
            return false;
        }
        let (ti, tj) = self.table[si * self.k + sj];
        self.counts[si] -= 1;
        self.counts[sj] -= 1;
        self.counts[ti as usize] += 1;
        self.counts[tj as usize] += 1;
        self.effective_interactions += 1;
        self.telemetry.effective += 1;
        if self.sparse.is_none() {
            self.states[i].store(ti, Ordering::Relaxed);
            self.states[j].store(tj, Ordering::Relaxed);
            return true;
        }
        // One endpoint at a time so each refresh sees a consistent
        // pre/post snapshot (same protocol as the scalar engine).
        if ti as usize != si {
            self.states[i].store(ti, Ordering::Relaxed);
            self.refresh_incident(i, si);
        }
        if tj as usize != sj {
            self.states[j].store(tj, Ordering::Relaxed);
            self.refresh_incident(j, sj);
        }
        true
    }

    fn refresh_incident(&mut self, v: usize, old: usize) {
        let t = self.state_of(v);
        let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
        for idx in lo..hi {
            let (nb, e) = self.adj[idx];
            let y = self.state_of(nb as usize);
            let was = (!self.noop[old * self.k + y]) as u64 + (!self.noop[y * self.k + old]) as u64;
            let now = (!self.noop[t * self.k + y]) as u64 + (!self.noop[y * self.k + t]) as u64;
            if was != now {
                self.sparse
                    .as_mut()
                    .expect("sparse-phase refresh without a skipper")
                    .set_weight(e as usize, now);
            }
        }
    }

    fn enter_sparse(&mut self) {
        let weights: Vec<u64> = (0..self.edges.len()).map(|e| self.edge_weight(e)).collect();
        let mut skipper = SparseSkipper::new(&weights);
        skipper.set_histograms(self.hist.is_some());
        self.sparse = Some(skipper);
        self.noop_run = 0;
        self.telemetry.sparse_enters += 1;
    }

    fn exit_sparse(&mut self) {
        if let Some(mut s) = self.sparse.take() {
            self.telemetry.sparse.absorb(s.take_stats());
            if let (Some(h), Some(sh)) = (&mut self.hist, s.histograms()) {
                h.merge(sh);
            }
            self.telemetry.sparse_exits += 1;
        }
        self.noop_run = 0;
    }

    /// Simulate exactly one scheduled interaction literally (uniform
    /// edge, uniform orientation from the driver RNG). The trait's
    /// single-step entry point; dense bulk advancement goes through the
    /// block machinery instead.
    pub fn step(&mut self, rng: &mut SimRng) -> bool {
        self.interactions += 1;
        self.telemetry.scheduled += 1;
        self.telemetry.dense_steps += 1;
        self.telemetry.pair_draws += 1;
        let (a, b) = self.edges[rng.index(self.edges.len())];
        let (i, j) = if rng.bernoulli(0.5) {
            (a as usize, b as usize)
        } else {
            (b as usize, a as usize)
        };
        self.apply_oriented(i, j)
    }

    /// One sparse-phase advancement (identical to the scalar engines').
    fn sparse_advance(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        let sparse = self
            .sparse
            .as_mut()
            .expect("sparse advance without skipper");
        let (consumed, e) = match sparse.next_event(rng, max) {
            SparseStep::Horizon => {
                self.interactions += max;
                self.telemetry.scheduled += max;
                return (max, false);
            }
            SparseStep::Event { consumed, edge } => {
                self.interactions += consumed;
                self.telemetry.scheduled += consumed;
                (consumed, edge)
            }
        };
        let (a, b) = self.edges[e];
        let sa = self.state_of(a as usize);
        let sb = self.state_of(b as usize);
        let (i, j) = orient_event(
            rng,
            a as usize,
            b as usize,
            !self.noop[sa * self.k + sb],
            !self.noop[sb * self.k + sa],
        );
        let changed = self.apply_oriented(i, j);
        debug_assert!(changed, "sampled active orientation was a no-op");
        self.sparse
            .as_mut()
            .expect("sparse advance without skipper")
            .end_event();
        (consumed, true)
    }

    /// Execute one dense block of `len` position-derived draws across the
    /// worker pool; returns the number of effective draws.
    fn dense_block(&mut self, block_seed: u64, len: usize) -> u64 {
        let domains = self.domains();
        let chunks = domains;
        let interior_end = self.edge_off[domains];
        let m = self.edges.len();

        // Phase 1 — bucket: chunk c derives positions [len·c/C, len·(c+1)/C)
        // and buckets them per domain. Field-borrow captures keep the
        // closure `Sync` without demanding it of the protocol type.
        {
            let chunk_scratch = &self.chunk_scratch;
            let edge_off = &self.edge_off;
            WorkerPool::global().run(self.threads, chunks, |c| {
                let mut sc = chunk_scratch[c].write().expect("chunk scratch poisoned");
                sc.clear(domains);
                let (lo, hi) = (len * c / chunks, len * (c + 1) / chunks);
                for pos in lo..hi {
                    let draw = derive_draw(block_seed, pos as u32, m);
                    if draw.edge < interior_end {
                        let d = edge_off.partition_point(|&s| s <= draw.edge) - 1;
                        sc.per_dom[d].push(draw);
                    } else {
                        sc.boundary.push(draw);
                    }
                }
            });
        }

        // Phase 2 — pre-mark: every boundary draw contaminates both its
        // endpoints before any interior application starts.
        for c in 0..chunks {
            let sc = self.chunk_scratch[c]
                .get_mut()
                .expect("chunk scratch poisoned");
            for draw in &sc.boundary {
                let (a, b) = self.edges[draw.edge as usize];
                self.dirty[a as usize / 64].fetch_or(1 << (a % 64), Ordering::Relaxed);
                self.dirty[b as usize / 64].fetch_or(1 << (b % 64), Ordering::Relaxed);
            }
        }

        // Phase 3 — interior: each domain applies its draws in position
        // order, deferring (and contaminating) anything that touches a
        // dirty vertex. A domain's dirty bits are written only by phase 2
        // (already done) and by its own worker, so the phase is race-free.
        {
            let chunk_scratch = &self.chunk_scratch;
            let dom_scratch = &self.dom_scratch;
            let dirty = &self.dirty;
            let edges = &self.edges;
            let states = &self.states;
            let table = &self.table;
            let noop = &self.noop;
            let k = self.k;
            WorkerPool::global().run(self.threads, domains, |d| {
                let mut ds = dom_scratch[d].write().expect("domain scratch poisoned");
                ds.clear(k);
                let ds = &mut *ds;
                for chunk in chunk_scratch.iter().take(chunks) {
                    let sc = chunk.read().expect("chunk scratch poisoned");
                    for &draw in &sc.per_dom[d] {
                        let (a, b) = edges[draw.edge as usize];
                        let (wa, ba) = (a as usize / 64, 1u64 << (a % 64));
                        let (wb, bb) = (b as usize / 64, 1u64 << (b % 64));
                        if dirty[wa].load(Ordering::Relaxed) & ba != 0
                            || dirty[wb].load(Ordering::Relaxed) & bb != 0
                        {
                            dirty[wa].fetch_or(ba, Ordering::Relaxed);
                            dirty[wb].fetch_or(bb, Ordering::Relaxed);
                            ds.deferred.push(draw);
                            continue;
                        }
                        let (i, j) = if draw.fwd {
                            (a as usize, b as usize)
                        } else {
                            (b as usize, a as usize)
                        };
                        ds.applied += 1;
                        if apply_scratch(states, table, noop, k, i, j, &mut ds.delta) {
                            ds.effective += 1;
                            ds.last_eff = ds.last_eff.max(draw.pos as i64);
                        }
                    }
                }
            });
        }

        // Phase 4 — replay: merge deferred + boundary draws, sort by
        // position, apply literally in schedule order, and clear exactly
        // the dirty bits those draws set.
        self.replay.clear();
        for d in 0..domains {
            let ds = self.dom_scratch[d]
                .get_mut()
                .expect("domain scratch poisoned");
            self.replay.extend_from_slice(&ds.deferred);
        }
        for c in 0..chunks {
            let sc = self.chunk_scratch[c]
                .get_mut()
                .expect("chunk scratch poisoned");
            self.replay.extend_from_slice(&sc.boundary);
        }
        self.replay.sort_unstable_by_key(|d| d.pos);
        let replay_len = self.replay.len() as u64;
        let mut applied = 0u64;
        let mut effective = 0u64;
        let mut last_eff: i64 = -1;
        let mut replay = std::mem::take(&mut self.replay);
        {
            let mut delta = vec![0i64; self.k];
            for draw in &replay {
                let (a, b) = self.edges[draw.edge as usize];
                self.dirty[a as usize / 64].fetch_and(!(1 << (a % 64)), Ordering::Relaxed);
                self.dirty[b as usize / 64].fetch_and(!(1 << (b % 64)), Ordering::Relaxed);
                let (i, j) = if draw.fwd {
                    (a as usize, b as usize)
                } else {
                    (b as usize, a as usize)
                };
                if apply_scratch(
                    &self.states,
                    &self.table,
                    &self.noop,
                    self.k,
                    i,
                    j,
                    &mut delta,
                ) {
                    effective += 1;
                    last_eff = last_eff.max(draw.pos as i64);
                }
            }
            for (c, d) in self.counts.iter_mut().zip(&delta) {
                *c = c.wrapping_add_signed(*d);
            }
        }
        replay.clear();
        self.replay = replay;

        // Merge the per-domain scratches into the engine totals.
        for d in 0..domains {
            let ds = self.dom_scratch[d]
                .get_mut()
                .expect("domain scratch poisoned");
            for (c, delta) in self.counts.iter_mut().zip(&ds.delta) {
                *c = c.wrapping_add_signed(*delta);
            }
            applied += ds.applied;
            effective += ds.effective;
            last_eff = last_eff.max(ds.last_eff);
        }

        // Clock exactness at stabilization: when the block leaves the
        // configuration silent, every draw after the final effective one
        // is a no-op with probability 1 and the scalar engines never
        // schedule them — charge the clock only up to that draw, so the
        // recorded stabilization time is exact to the interaction (not
        // rounded up to the block boundary). The position of the last
        // effective draw is trajectory-determined, so the truncation is
        // thread-count invariant like everything else here. Work counters
        // (`block_draws`, `block_applied`, `fallback_literal`) keep the
        // full block — those draws were derived and applied.
        let charged = if effective > 0 && self.protocol.is_silent(&self.counts) {
            (last_eff + 1) as u64
        } else {
            len as u64
        };
        self.interactions += charged;
        self.effective_interactions += effective;
        self.telemetry.scheduled += charged;
        self.telemetry.effective += effective;
        self.telemetry.blocks += 1;
        self.telemetry.block_draws += len as u64;
        self.telemetry.pair_draws += len as u64;
        self.telemetry.block_applied += applied;
        self.telemetry.fallback_literal += replay_len;
        if let Some(h) = &mut self.hist {
            h.block_size.add_u64(applied);
            h.fallback_run.add_u64(replay_len);
        }
        effective
    }

    /// Advance by at most `max` interactions: one position-derived dense
    /// block (taking one `block_seed` word from the driver RNG) or one
    /// sparse-phase advancement. Same clock-stop-on-silence contract as
    /// the scalar graph engines.
    pub fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        let out = self.advance_changed_impl(rng, max);
        if let Some(s) = &mut self.sparse {
            self.telemetry.sparse.absorb(s.take_stats());
        }
        out
    }

    fn advance_changed_impl(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        if max == 0 {
            return (0, false);
        }
        let mut advanced = 0u64;
        loop {
            if let Some(s) = &self.sparse {
                if s.total() == 0 {
                    // Certified silent: the clock stops (see GraphSimulator).
                    return (advanced, false);
                }
                if s.should_exit_to_dense() {
                    self.exit_sparse();
                } else {
                    let t0 = self.telemetry.clock.start();
                    let (leapt, changed) = self.sparse_advance(rng, max - advanced);
                    self.telemetry.spans.sparse_ns += self.telemetry.clock.elapsed_ns(t0);
                    return (advanced + leapt, changed);
                }
            }
            // Dense phase: one position-derived block per loop turn, each
            // taking exactly one seed word from the driver RNG — the RNG
            // position stays a pure function of the trajectory, which is
            // what checkpoint/resume repositioning relies on.
            let len = (self.block as u64).min(max - advanced) as usize;
            let block_seed = rng.next();
            let t0 = self.telemetry.clock.start();
            let effective = self.dense_block(block_seed, len);
            self.telemetry.spans.dense_ns += self.telemetry.clock.elapsed_ns(t0);
            self.telemetry.dense_steps += len as u64;
            advanced += len as u64;
            if effective > 0 {
                self.noop_run = 0;
                return (advanced, true);
            }
            self.noop_run = self.noop_run.saturating_add(len as u32);
            if self.noop_run >= SPARSE_TRIGGER_NOOPS {
                // Escalate: the next loop turn skips geometrically (or
                // certifies silence).
                self.enter_sparse();
            }
            if advanced >= max {
                return (advanced, false);
            }
        }
    }
}

/// BFS visitation order from vertex 0 (continuing from the smallest
/// unvisited vertex on disconnected graphs): `order[new_id] = old_id`.
fn bfs_order(n: usize, offsets: &[u32], adj: &[(u32, u32)]) -> Vec<u32> {
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut head = 0usize;
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        order.push(root as u32);
        while head < order.len() {
            let v = order[head] as usize;
            head += 1;
            for &(nb, _) in &adj[offsets[v] as usize..offsets[v + 1] as usize] {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    order.push(nb);
                }
            }
        }
    }
    order
}

impl<P: Protocol> Simulator for ParGraphSimulator<P> {
    fn population(&self) -> u64 {
        self.states.len() as u64
    }

    fn num_states(&self) -> usize {
        self.k
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    fn step(&mut self, rng: &mut SimRng) -> bool {
        ParGraphSimulator::step(self, rng)
    }

    fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        ParGraphSimulator::advance_changed(self, rng, max)
    }

    fn is_silent(&self) -> bool {
        ParGraphSimulator::is_silent(self)
    }

    fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    fn set_span_timing(&mut self, enabled: bool) {
        self.telemetry.clock.enabled = enabled;
    }

    fn set_histograms(&mut self, enabled: bool) {
        self.hist = if enabled {
            Some(Box::new(EventHistograms::new()))
        } else {
            None
        };
        if let Some(s) = &mut self.sparse {
            s.set_histograms(enabled);
        }
    }

    fn histograms(&self) -> Option<EventHistograms> {
        let mut h = self.hist.as_deref()?.clone();
        if let Some(sh) = self.sparse.as_ref().and_then(|s| s.histograms()) {
            h.merge(sh);
        }
        Some(h)
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) -> Result<(), CheckpointError> {
        // Graph structure, decomposition, and tables are
        // constructor-derived (the BFS renumbering is deterministic, so a
        // restored engine reproduces them); the mutable state is the
        // internal-order agent states, the clocks, the no-op accumulator,
        // and the live skipper. Scratch buffers are per-block transient —
        // snapshots only happen at block boundaries, where they are empty.
        w.put_u8(snapshot_tags::PAR_GRAPH);
        snapshot_tags::write_config(w, self.states.len() as u64, self.k);
        let states: Vec<u32> = self
            .states
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        w.put_u32_slice(&states);
        w.put_u64(self.interactions);
        w.put_u64(self.effective_interactions);
        w.put_u32(self.noop_run);
        self.telemetry.write_snapshot(w);
        match &self.hist {
            Some(h) => {
                w.put_bool(true);
                h.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        match &self.sparse {
            Some(s) => {
                w.put_bool(true);
                s.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        snapshot_tags::expect(r, snapshot_tags::PAR_GRAPH, "pargraph")?;
        snapshot_tags::expect_config(r, self.states.len() as u64, self.k)?;
        let states = r.get_u32_vec()?;
        if states.len() != self.states.len() {
            return Err(CheckpointError::Corrupt(format!(
                "pargraph snapshot has {} agents (engine has {})",
                states.len(),
                self.states.len()
            )));
        }
        let mut counts = vec![0u64; self.k];
        for &s in &states {
            if (s as usize) >= self.k {
                return Err(CheckpointError::Corrupt(format!(
                    "agent state index {s} out of range ({} states)",
                    self.k
                )));
            }
            counts[s as usize] += 1;
        }
        let interactions = r.get_u64()?;
        let effective_interactions = r.get_u64()?;
        let noop_run = r.get_u32()?;
        let telemetry = EngineTelemetry::read_snapshot(r)?;
        let hist = if r.get_bool()? {
            Some(Box::new(EventHistograms::read_snapshot(r)?))
        } else {
            None
        };
        for (slot, &s) in self.states.iter().zip(&states) {
            slot.store(s, Ordering::Relaxed);
        }
        self.counts = counts;
        let sparse = if r.get_bool()? {
            let truth: Vec<u64> = (0..self.edges.len()).map(|e| self.edge_weight(e)).collect();
            Some(SparseSkipper::read_snapshot(&truth, r)?)
        } else {
            None
        };
        self.interactions = interactions;
        self.effective_interactions = effective_interactions;
        self.noop_run = noop_run;
        self.telemetry = telemetry;
        self.hist = hist;
        self.sparse = sparse;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OneWayEpidemic;

    fn epidemic_on(
        graph: &Graph,
        infected: usize,
        threads: usize,
    ) -> ParGraphSimulator<OneWayEpidemic> {
        let mut states = vec![1usize; graph.n()];
        for s in states.iter_mut().take(infected) {
            *s = 0;
        }
        ParGraphSimulator::new(OneWayEpidemic, graph, states, threads)
    }

    fn counts_trajectory(
        graph: &Graph,
        threads: usize,
        seed: u64,
        max_calls: usize,
        hist: bool,
    ) -> Vec<Vec<u64>> {
        let mut sim = epidemic_on(graph, graph.n() / 10 + 1, threads);
        Simulator::set_histograms(&mut sim, hist);
        let mut rng = SimRng::new(seed);
        let mut traj = vec![sim.counts().to_vec()];
        for _ in 0..max_calls {
            if sim.is_silent() {
                break;
            }
            let (advanced, _) = sim.advance_changed(&mut rng, u64::MAX / 2);
            traj.push(sim.counts().to_vec());
            if advanced == 0 {
                break;
            }
        }
        traj
    }

    #[test]
    fn trajectories_bit_identical_across_thread_counts() {
        for graph in [Graph::cycle(600), Graph::grid(24, 25)] {
            let reference = counts_trajectory(&graph, 1, 99, 400, false);
            for threads in [2usize, 8] {
                assert_eq!(
                    counts_trajectory(&graph, threads, 99, 400, false),
                    reference,
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn renumbering_preserves_initial_counts_and_layout_multiset() {
        let g = Graph::grid(10, 10);
        let mut states = vec![1usize; 100];
        states[37] = 0;
        states[62] = 0;
        let sim = ParGraphSimulator::new(OneWayEpidemic, &g, states, 4);
        assert_eq!(sim.counts(), &[2, 98]);
        // The BFS renumbering permutes, never duplicates or drops.
        let internal: u64 = (0..100).map(|v| (sim.state_of(v) == 0) as u64).sum();
        assert_eq!(internal, 2);
    }

    #[test]
    fn domains_are_aligned_and_cover_the_vertex_range() {
        let g = Graph::cycle(20_000);
        let sim = epidemic_on(&g, 1, 4);
        let cuts = &sim.dom_start;
        assert_eq!(cuts[0], 0);
        assert_eq!(*cuts.last().unwrap() as usize, 20_000);
        for w in cuts.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in &cuts[..cuts.len() - 1] {
            assert_eq!(c % 64, 0, "unaligned cut {c}");
        }
        assert_eq!(sim.domains(), domain_count(20_000));
        // BFS order walks the cycle outward from vertex 0, so domains are
        // one or two contiguous arcs each: a handful of boundary edges, a
        // vanishing fraction of the 20 000.
        assert!(sim.boundary_edges() > 0);
        assert!(sim.boundary_edges() <= 2 * sim.domains());
    }

    #[test]
    fn epidemic_completes_and_counts_events() {
        let g = Graph::cycle(500);
        let mut sim = epidemic_on(&g, 1, 4);
        let mut rng = SimRng::new(1);
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
        }
        assert_eq!(sim.counts(), &[500, 0]);
        assert_eq!(sim.effective_interactions(), 499);
        assert_eq!(sim.active_weight(), 0);
    }

    #[test]
    fn effective_clock_matches_scalar_graph_engine_in_distribution() {
        // Same law as the scalar engine: mean completion interactions of
        // the epidemic agree within a few percent across seeds.
        let reps = 60u64;
        let mut par_mean = 0.0;
        let mut scalar_mean = 0.0;
        for seed in 0..reps {
            let g = Graph::cycle(64);
            let mut sim = epidemic_on(&g, 1, 4);
            let mut rng = SimRng::new(seed);
            while !sim.is_silent() {
                sim.advance_changed(&mut rng, u64::MAX / 2);
            }
            par_mean += sim.interactions() as f64;

            let g = Graph::cycle(64);
            let mut states = vec![1usize; 64];
            states[0] = 0;
            let mut sim = crate::simulator::GraphSimulator::new(OneWayEpidemic, &g, states);
            let mut rng = SimRng::new(seed + 55_000);
            while !sim.is_silent() {
                sim.advance_changed(&mut rng, u64::MAX / 2);
            }
            scalar_mean += sim.interactions() as f64;
        }
        par_mean /= reps as f64;
        scalar_mean /= reps as f64;
        let rel = (par_mean - scalar_mean).abs() / scalar_mean;
        assert!(rel < 0.08, "pargraph {par_mean} vs graph {scalar_mean}");
    }

    #[test]
    fn advance_respects_max_and_truncates_exactly() {
        let g = Graph::cycle(1000);
        let mut sim = epidemic_on(&g, 1, 4);
        let mut rng = SimRng::new(3);
        for max in [1u64, 7, 100, 10_000] {
            let before = sim.interactions();
            let (advanced, _) = sim.advance_changed(&mut rng, max);
            assert!(advanced >= 1 && advanced <= max, "advanced {advanced}");
            assert_eq!(sim.interactions() - before, advanced);
        }
    }

    #[test]
    fn telemetry_mirrors_clocks_and_counts_blocks() {
        let g = Graph::grid(20, 20);
        let mut sim = epidemic_on(&g, 4, 4);
        let mut rng = SimRng::new(21);
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
        }
        let t = Simulator::telemetry(&sim);
        assert_eq!(t.scheduled, sim.interactions());
        assert_eq!(t.effective, sim.effective_interactions());
        assert!(t.blocks > 0, "no dense blocks ran");
        assert_eq!(t.block_draws, t.block_applied + t.fallback_literal);
        assert_eq!(t.spans, crate::telemetry::SpanSet::new());
    }

    #[test]
    fn histograms_do_not_perturb_the_trajectory() {
        let g = Graph::cycle(600);
        let bare = counts_trajectory(&g, 4, 7, 400, false);
        assert_eq!(counts_trajectory(&g, 4, 7, 400, true), bare);
    }

    #[test]
    fn sparse_phase_invariants_hold_across_advancements() {
        let g = Graph::cycle(2_048);
        let mut sim = epidemic_on(&g, 1, 4);
        let mut rng = SimRng::new(13);
        let mut entered = false;
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
            sim.validate_sparse_invariants().unwrap();
            entered |= sim.sparse.is_some();
        }
        assert!(entered, "creeping frontier never reached the sparse phase");
    }

    #[test]
    fn silent_configuration_stops_the_clock() {
        let g = Graph::cycle(640);
        let mut sim = epidemic_on(&g, 640, 4); // everyone infected: silent
        assert!(sim.is_silent());
        let mut rng = SimRng::new(4);
        let (first, changed) = sim.advance_changed(&mut rng, 50_000);
        assert!(!changed);
        assert!(first <= 50_000);
        let clock = sim.interactions();
        let (second, changed) = sim.advance_changed(&mut rng, 50_000);
        assert_eq!((second, changed), (0, false));
        assert_eq!(sim.interactions(), clock);
        assert_eq!(sim.effective_interactions(), 0);
    }

    #[test]
    fn disconnected_graph_freezes_with_mixed_counts() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let mut states = vec![1usize; 4];
        states[0] = 0;
        let mut sim = ParGraphSimulator::new(OneWayEpidemic, &g, states, 2);
        let mut rng = SimRng::new(5);
        let mut guard = 0;
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
            guard += 1;
            assert!(guard < 1000);
        }
        assert_eq!(sim.counts(), &[2, 2]);
    }

    #[test]
    fn snapshot_roundtrip_resumes_bit_identically() {
        let g = Graph::grid(24, 25);
        let mut sim = epidemic_on(&g, 6, 4);
        let mut rng = SimRng::new(17);
        for _ in 0..5 {
            sim.advance_changed(&mut rng, u64::MAX / 2);
        }
        let mut w = SnapshotWriter::new();
        Simulator::snapshot_state(&sim, &mut w).unwrap();
        let bytes = w.into_bytes();
        let rng_state = rng.state();

        // Continue the original.
        let mut expect = Vec::new();
        for _ in 0..10 {
            sim.advance_changed(&mut rng, u64::MAX / 2);
            expect.push(sim.counts().to_vec());
        }

        // Restore into a fresh engine (different thread count, same
        // trajectory) and replay.
        let mut fresh = epidemic_on(&g, 6, 8);
        let mut r = SnapshotReader::new(&bytes);
        Simulator::restore_state(&mut fresh, &mut r).unwrap();
        let mut rng2 = SimRng::from_state(rng_state).unwrap();
        for want in &expect {
            fresh.advance_changed(&mut rng2, u64::MAX / 2);
            assert_eq!(&fresh.counts().to_vec(), want);
        }
    }

    #[test]
    fn restore_rejects_wrong_engine_tag() {
        let g = Graph::cycle(64);
        let scalar = {
            let mut states = vec![1usize; 64];
            states[0] = 0;
            crate::simulator::GraphSimulator::new(OneWayEpidemic, &g, states)
        };
        let mut w = SnapshotWriter::new();
        Simulator::snapshot_state(&scalar, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut sim = epidemic_on(&g, 1, 2);
        let mut r = SnapshotReader::new(&bytes);
        assert!(Simulator::restore_state(&mut sim, &mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "needs edges")]
    fn empty_graph_rejected() {
        let g = Graph::from_edges(3, vec![]);
        ParGraphSimulator::new(OneWayEpidemic, &g, vec![0, 1, 1], 2);
    }

    #[test]
    #[should_panic(expected = "vertex count")]
    fn state_count_mismatch_rejected() {
        let g = Graph::cycle(3);
        ParGraphSimulator::new(OneWayEpidemic, &g, vec![0, 1], 2);
    }
}
