//! Shared block-leaping sparse-phase engine for the graph simulators.
//!
//! Both [`GraphSimulator`](super::GraphSimulator) and
//! [`BatchGraphSimulator`](super::BatchGraphSimulator) handle
//! no-op-dominated stretches the same way: a Fenwick tree over per-edge
//! *active-orientation* weights turns the embedded no-op runs into exact
//! geometric skips (success probability `W / 2m`) and effective events into
//! weighted draws. Until PR 5 each engine carried its own copy of that
//! machinery and paid O(d log m) Fenwick point-updates on **every**
//! effective event. This module is the one shared implementation, made
//! block-leaping:
//!
//! * **Incremental clean weight.** The exact total active weight `W` is
//!   maintained as a plain counter (`w_true`), so the skip probability and
//!   the silence test (`W == 0`) never wait on the tree.
//! * **Deferred, coalesced Fenwick updates.** An effective event changes
//!   the weights of the ≤ 2d edges incident to its endpoints. Instead of
//!   walking the tree for each, the new weights are parked in a small
//!   *pending sidecar* (edge → exact current weight) and the tree is left
//!   stale. Once per block — [`FLUSH_EVENTS`] events, or earlier if the
//!   sidecar grows past its bounds — the sidecar is applied to the tree in
//!   one batched pass that skips every edge whose weight returned to its
//!   stored value. On frontier dynamics (a cycle or torus boundary walking
//!   back and forth) most per-event deltas cancel within a block, so the
//!   tree sees a small fraction of the point-updates the per-event engines
//!   paid.
//! * **No false negatives.** Every edge whose true weight differs from its
//!   tree entry is in the sidecar — the same convention as the dense
//!   leaper's dirty bitmap: an entry may be redundant (weight changed and
//!   changed back), never missing. Sampling therefore splits exactly:
//!   a uniform draw below `W` lands either in the sidecar mass (resolved
//!   by a scan of the ≤ [`PENDING_MAX`] sidecar entries, whose weights are
//!   current by construction) or in the clean mass (resolved by the stale
//!   tree conditioned on clean edges via rejection — clean tree entries
//!   *are* current, and the flush policy caps the stale tree total at
//!   twice the true weight, which bounds the expected tree samples per
//!   event at 2).
//! * **Negative-binomial block totals.** The no-op run before each event is
//!   still an exact `Geom(W/2m)` draw, but consecutive events of a block
//!   usually leave `W` unchanged (a moving frontier keeps the same number
//!   of active orientations), so the block's aggregate skip is one
//!   negative-binomial-style total: the inversion constant `ln(1 − p)` is
//!   computed once per distinct `W` and reused across the block
//!   ([`SimRng::negative_binomial`] is the same aggregation in one call,
//!   and the distributional tests below pin the two against each other),
//!   and the caller charges the interaction clock once per block.
//!
//! Exactness is unchanged from the per-event skipper: the skip law, the
//! weighted event draw, and the silence test all see the *true* weights at
//! every event — only the tree's materialization of them is deferred. The
//! phase-hysteresis constants ([`SPARSE_TRIGGER_NOOPS`],
//! [`DENSE_ENTER_INV`]) live here too, so the two engines cannot drift
//! apart.

use crate::sampling::FenwickSampler;
use sim_stats::rng::SimRng;

/// Consecutive no-op draws in the dense/block phase that trigger the switch
/// to the sparse skipper. At activity fraction `f` the probability of this
/// many consecutive no-ops is `(1 − f)^1024` — negligible above `f ≈ 1/64`,
/// near-certain once the fraction truly collapses, so spurious O(m)
/// rebuilds are rare and real collapses are caught within ~1k steps.
pub(crate) const SPARSE_TRIGGER_NOOPS: u32 = 1024;

/// Activity fraction at which the sparse phase drops its Fenwick tree and
/// returns to dense stepping: skipping `< 32` no-ops per event no longer
/// repays the sparse bookkeeping. The wide hysteresis band versus
/// [`SPARSE_TRIGGER_NOOPS`] (~1/1024) prevents rebuild thrash.
pub(crate) const DENSE_ENTER_INV: u64 = 32;

/// Effective events between batched Fenwick flushes (the sparse block
/// length). Large enough that a wandering frontier's weight deltas get a
/// real chance to cancel before the tree is touched, small enough that the
/// sidecar scan stays a few cache lines.
const FLUSH_EVENTS: u32 = 64;

/// Sidecar capacity bound: a flush is forced before the pending list
/// outgrows one page worth of entries, keeping the sidecar scan O(1)-ish
/// even on high-degree graphs where one event parks 2d edges.
const PENDING_MAX: usize = 512;

/// Sidecar size above which toggled-back entries (weight equal to the
/// tree's again) are evicted eagerly. Small sidecars scan in a couple of
/// cache lines, so eviction bookkeeping would cost more than it saves;
/// large ones (high-degree frontiers) shrink measurably.
const EVICT_ABOVE: usize = 48;

/// Maximum effective events [`BatchGraphSimulator`](super::BatchGraphSimulator)
/// applies per sparse advancement (its sparse-phase observation
/// granularity — one block checkpoint summarizes up to this many events).
/// [`GraphSimulator`](super::GraphSimulator) keeps its exact per-event
/// granularity by advancing one event at a time; the Fenwick amortization
/// above is shared either way because the sidecar persists across calls.
pub(crate) const SPARSE_BLOCK_EVENTS: u64 = 64;

/// One pending (deferred) weight entry: the edge and its exact current
/// weight, which the stale Fenwick tree does not yet reflect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    edge: u32,
    w: u64,
}

/// Outcome of one sparse advancement attempt against a horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SparseStep {
    /// The next effective event lands beyond the horizon: the first `max`
    /// scheduled interactions are conditionally all no-ops (truncated
    /// geometric — still exact). The caller charges the full horizon.
    Horizon,
    /// An effective event: `consumed` scheduled interactions (the geometric
    /// no-op run plus the event itself) and the event's edge, drawn from
    /// the exact conditional law (∝ current active-orientation weight).
    Event {
        /// Scheduled interactions consumed (skipped no-ops + 1).
        consumed: u64,
        /// The effective edge index.
        edge: usize,
    },
}

/// The shared sparse-phase engine: a Fenwick tree over per-edge
/// active-orientation weights with deferred, coalesced updates. See the
/// module docs for the machinery and its exactness argument.
#[derive(Debug, Clone)]
pub(crate) struct SparseSkipper {
    /// Fenwick tree over edge weights; **stale** on pending edges.
    fenwick: FenwickSampler,
    /// Exact total active weight `W`, maintained incrementally.
    w_true: u64,
    /// Pending sidecar: edges whose true weight the tree does not reflect.
    pending: Vec<Pending>,
    /// Edge → sidecar slot (`u32::MAX` = clean: tree entry is current).
    pending_idx: Vec<u32>,
    /// Σ true weights over sidecar edges (the sidecar's sampling mass).
    pending_true_sum: u64,
    /// Effective events since the last flush.
    events_since_flush: u32,
    /// Total scheduled orientations `2m` (the skip denominator).
    two_m: u64,
    /// `W` value the cached inversion constant corresponds to
    /// (`u64::MAX` = none cached).
    cached_w: u64,
    /// Cached `ln(1 − W/2m)` for the geometric inversion.
    cached_ln_q: f64,
}

impl SparseSkipper {
    /// Build from a scan of the current per-edge active-orientation
    /// weights (entering the sparse phase).
    pub(crate) fn new(weights: &[u64]) -> Self {
        let fenwick = FenwickSampler::new(weights);
        let w_true = fenwick.total();
        SparseSkipper {
            fenwick,
            w_true,
            pending: Vec::new(),
            pending_idx: vec![u32::MAX; weights.len()],
            pending_true_sum: 0,
            events_since_flush: 0,
            two_m: 2 * weights.len() as u64,
            cached_w: u64::MAX,
            cached_ln_q: 0.0,
        }
    }

    /// Exact total active weight `W` (0 iff silent). O(1).
    #[inline]
    pub(crate) fn total(&self) -> u64 {
        self.w_true
    }

    /// Exact current weight of edge `e` (sidecar if pending, tree
    /// otherwise).
    #[inline]
    pub(crate) fn weight(&self, e: usize) -> u64 {
        let slot = self.pending_idx[e];
        if slot == u32::MAX {
            self.fenwick.weight(e)
        } else {
            self.pending[slot as usize].w
        }
    }

    /// Whether activity has recovered past the hysteresis threshold and
    /// the engine should drop the tree and re-enter its dense phase.
    #[inline]
    pub(crate) fn should_exit_to_dense(&self) -> bool {
        self.w_true * DENSE_ENTER_INV >= self.two_m
    }

    /// Record edge `e`'s new true weight (deferred: the tree is not
    /// touched). No-op when the weight is unchanged; an edge whose weight
    /// returns to its tree entry stays harmlessly pending until the next
    /// flush while the sidecar is small, and is evicted eagerly once it
    /// grows past [`EVICT_ABOVE`] (either way: no false negatives,
    /// possible false positives — the dense leaper's dirty-bitmap
    /// convention).
    #[inline]
    pub(crate) fn set_weight(&mut self, e: usize, new_w: u64) {
        let slot = self.pending_idx[e];
        if slot != u32::MAX {
            let old = self.pending[slot as usize].w;
            if old == new_w {
                return;
            }
            self.w_true = self.w_true - old + new_w;
            if self.pending.len() > EVICT_ABOVE && self.fenwick.weight(e) == new_w {
                // The weight toggled back to the tree's value (frontier
                // edges do this constantly): once the sidecar is big
                // enough that its scans cost more than the eviction
                // bookkeeping, drop the entry so it holds only
                // truly-divergent edges — smaller scans, cheaper flushes.
                // Below the bound the scan is a couple of cache lines and
                // keeping the entry is cheaper than the swap-remove.
                self.pending_true_sum -= old;
                self.pending.swap_remove(slot as usize);
                self.pending_idx[e] = u32::MAX;
                if let Some(moved) = self.pending.get(slot as usize) {
                    self.pending_idx[moved.edge as usize] = slot;
                }
                return;
            }
            self.pending[slot as usize].w = new_w;
            self.pending_true_sum = self.pending_true_sum - old + new_w;
        } else {
            let old = self.fenwick.weight(e);
            if old == new_w {
                return;
            }
            self.pending_idx[e] = self.pending.len() as u32;
            self.pending.push(Pending {
                edge: e as u32,
                w: new_w,
            });
            self.w_true = self.w_true - old + new_w;
            self.pending_true_sum += new_w;
        }
    }

    /// Apply the sidecar to the tree in one batched pass, skipping edges
    /// whose weight returned to the stored value, and clear it.
    pub(crate) fn flush(&mut self) {
        for i in 0..self.pending.len() {
            let Pending { edge, w } = self.pending[i];
            self.pending_idx[edge as usize] = u32::MAX;
            if self.fenwick.weight(edge as usize) != w {
                self.fenwick.set(edge as usize, w);
            }
        }
        self.pending.clear();
        self.pending_true_sum = 0;
        self.events_since_flush = 0;
        debug_assert_eq!(self.fenwick.total(), self.w_true, "flush lost weight");
    }

    /// End-of-event bookkeeping: count the event and flush when the block
    /// is full or the sidecar has outgrown the bounds that keep sampling
    /// cheap. The rejection-cost bound is on the *stale tree total*: a
    /// clean-mass draw costs an expected `fenwick_total / W` tree samples
    /// (probability of landing clean × rejections until a clean edge), so
    /// the tree total may drift up to twice the true weight before a
    /// flush is forced — which never triggers while a frontier churns at
    /// roughly constant `W`, the whole point of the deferral.
    #[inline]
    pub(crate) fn end_event(&mut self) {
        self.events_since_flush += 1;
        if self.events_since_flush >= FLUSH_EVENTS
            || self.pending.len() >= PENDING_MAX
            || self.fenwick.total() > 2 * self.w_true
        {
            self.flush();
        }
    }

    /// Exact geometric no-op run length before the next effective event
    /// (`p = W/2m`), with the inversion constant cached per distinct `W` —
    /// across a block whose events leave `W` unchanged this makes the
    /// aggregate skip one negative-binomial-style total (see the module
    /// docs). Precondition: `W > 0`.
    #[inline]
    fn skip_len(&mut self, rng: &mut SimRng) -> u64 {
        debug_assert!(self.w_true > 0, "skip from a silent configuration");
        if self.w_true >= self.two_m {
            return 0; // every orientation active: p = 1
        }
        if self.cached_w != self.w_true {
            let p = self.w_true as f64 / self.two_m as f64;
            self.cached_ln_q = (-p).ln_1p();
            self.cached_w = self.w_true;
        }
        let u = loop {
            let u = rng.f64();
            if u > 0.0 {
                break u;
            }
        };
        let g = (u.ln() / self.cached_ln_q).floor();
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Sample an edge with probability proportional to its **true** weight:
    /// a uniform draw below `W` resolves in the sidecar mass (current by
    /// construction) or in the clean tree mass (rejection on pending
    /// edges). Precondition: `W > 0`.
    #[inline]
    fn sample_edge(&self, rng: &mut SimRng) -> usize {
        debug_assert!(self.w_true > 0, "sampling from a silent configuration");
        let u = rng.below(self.w_true);
        if u < self.pending_true_sum {
            let mut acc = 0u64;
            for p in &self.pending {
                acc += p.w;
                if u < acc {
                    return p.edge as usize;
                }
            }
            unreachable!("sidecar mass accounting is inconsistent");
        }
        // Clean mass: clean tree entries are current, so the stale tree
        // conditioned on clean edges is the exact conditional law. The
        // flush policy bounds the stale mass at half the tree total, so
        // this loop runs an expected ≤ 2 rounds.
        loop {
            let e = self.fenwick.sample(rng);
            if self.pending_idx[e] == u32::MAX {
                return e;
            }
        }
    }

    /// One sparse advancement against a horizon of `max` scheduled
    /// interactions: geometrically skip the no-op run and either hand back
    /// the effective edge (drawn from the exact conditional law) or report
    /// that the event lands beyond the horizon. The caller applies the
    /// transition, reports weight changes via [`SparseSkipper::set_weight`],
    /// and closes the event with [`SparseSkipper::end_event`].
    /// Precondition: `W > 0`, `max > 0`.
    #[inline]
    pub(crate) fn next_event(&mut self, rng: &mut SimRng, max: u64) -> SparseStep {
        debug_assert!(max > 0);
        let skipped = self.skip_len(rng);
        if skipped >= max {
            return SparseStep::Horizon;
        }
        SparseStep::Event {
            consumed: skipped + 1,
            edge: self.sample_edge(rng),
        }
    }

    /// Verify the skipper against ground-truth per-edge weights: every
    /// edge's tracked weight, the incremental total, the sidecar sums, and
    /// (for clean edges) the tree entries must all be consistent. O(m);
    /// used by the property tests.
    pub(crate) fn check_consistent(&self, truth: &[u64]) -> Result<(), String> {
        if truth.len() != self.fenwick.len() {
            return Err(format!(
                "edge count mismatch: {} vs {}",
                truth.len(),
                self.fenwick.len()
            ));
        }
        let mut total = 0u64;
        let mut pend_true = 0u64;
        for (e, &w) in truth.iter().enumerate() {
            total += w;
            if self.weight(e) != w {
                return Err(format!(
                    "edge {e}: tracked weight {} != true weight {w}",
                    self.weight(e)
                ));
            }
            let slot = self.pending_idx[e];
            if slot == u32::MAX {
                if self.fenwick.weight(e) != w {
                    return Err(format!(
                        "clean edge {e}: stale tree entry {} != true weight {w}",
                        self.fenwick.weight(e)
                    ));
                }
            } else {
                let p = self.pending[slot as usize];
                if p.edge as usize != e {
                    return Err(format!("sidecar slot {slot} does not point back at {e}"));
                }
                pend_true += p.w;
            }
        }
        if total != self.w_true {
            return Err(format!(
                "incremental total {} != Σ true {total}",
                self.w_true
            ));
        }
        if pend_true != self.pending_true_sum {
            return Err(format!(
                "sidecar mass drifted: {} vs Σ {pend_true}",
                self.pending_true_sum
            ));
        }
        Ok(())
    }
}

/// Orient an effective event on edge `(a, b)`: when both orientations are
/// active pick one uniformly, otherwise take the single active one.
/// `a_active` / `b_active` report whether `(a → b)` / `(b → a)` change the
/// configuration; at least one must hold.
#[inline]
pub(crate) fn orient_event(
    rng: &mut SimRng,
    a: usize,
    b: usize,
    a_active: bool,
    b_active: bool,
) -> (usize, usize) {
    debug_assert!(a_active || b_active, "orienting an inactive edge");
    if a_active && b_active {
        if rng.bernoulli(0.5) {
            (a, b)
        } else {
            (b, a)
        }
    } else if a_active {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_stats::ks::{ks_critical_value, ks_statistic};

    /// A weight vector with the sparse-phase shape: mostly zeros, a few
    /// active edges of weight 1 or 2.
    fn sparse_weights(m: usize, active: &[(usize, u64)]) -> Vec<u64> {
        let mut w = vec![0u64; m];
        for &(e, v) in active {
            w[e] = v;
        }
        w
    }

    #[test]
    fn skipper_tracks_totals_and_weights() {
        let w = sparse_weights(16, &[(3, 2), (7, 1), (12, 2)]);
        let mut s = SparseSkipper::new(&w);
        assert_eq!(s.total(), 5);
        assert_eq!(s.weight(3), 2);
        assert_eq!(s.weight(0), 0);
        s.set_weight(3, 0);
        s.set_weight(0, 1);
        assert_eq!(s.total(), 4);
        assert_eq!(s.weight(3), 0);
        assert_eq!(s.weight(0), 1);
        // The tree has not been flushed: entries are stale but tracked
        // weights are exact.
        let truth = sparse_weights(16, &[(0, 1), (7, 1), (12, 2)]);
        s.check_consistent(&truth).unwrap();
        s.flush();
        s.check_consistent(&truth).unwrap();
    }

    /// Satellite property test: a block's aggregated skip total must match
    /// the sum of per-event geometric draws distributionally. The
    /// reference is [`SimRng::negative_binomial`] — by construction the
    /// sum of `r` independent geometric inversions — compared by
    /// two-sample KS at α = 0.01.
    #[test]
    fn block_skip_totals_match_negative_binomial_ks() {
        let m = 64usize;
        let active: Vec<(usize, u64)> = vec![(5, 2), (17, 1), (30, 2), (44, 1), (60, 2)];
        let w = sparse_weights(m, &active);
        let p = 8.0 / (2 * m) as f64; // W = 8, 2m = 128
        let blocks = 400usize;
        let r = 16u64;

        let mut s = SparseSkipper::new(&w);
        let mut rng = SimRng::new(1234);
        let engine: Vec<f64> = (0..blocks)
            .map(|_| {
                let mut total = 0u64;
                for _ in 0..r {
                    match s.next_event(&mut rng, u64::MAX / 2) {
                        SparseStep::Event { consumed, .. } => total += consumed - 1,
                        SparseStep::Horizon => unreachable!("horizon at u64::MAX/2"),
                    }
                    // Weights never change: the whole block runs at one W,
                    // the regime where the aggregate is negative binomial.
                    s.end_event();
                }
                total as f64
            })
            .collect();

        let mut ref_rng = SimRng::new(98_765);
        let reference: Vec<f64> = (0..blocks)
            .map(|_| ref_rng.negative_binomial(r, p) as f64)
            .collect();

        let d = ks_statistic(&engine, &reference);
        let crit = ks_critical_value(engine.len(), reference.len(), 0.01);
        assert!(
            d < crit,
            "block skip totals vs NB({r}, {p}): KS {d:.4} >= critical {crit:.4}"
        );
    }

    /// Satellite property test: after every batched block apply (flush) the
    /// Fenwick weights must be consistent with a from-scratch rebuild —
    /// and tracked weights must stay exact even between flushes.
    #[test]
    fn fenwick_matches_rebuild_after_every_flush() {
        let m = 48usize;
        let mut truth = sparse_weights(m, &[(1, 1), (9, 2), (20, 1), (33, 2), (40, 1)]);
        let mut s = SparseSkipper::new(&truth);
        let mut rng = SimRng::new(77);
        let mut flushes = 0u32;
        for step in 0..4_000u64 {
            // Mutate a few random edges (an event's incident re-weighting).
            for _ in 0..3 {
                let e = rng.index(m);
                let nw = rng.below(3);
                s.set_weight(e, nw);
                truth[e] = nw;
            }
            s.check_consistent(&truth).unwrap_or_else(|msg| {
                panic!("step {step} (pre-event): {msg}");
            });
            if s.total() > 0 {
                // Exercise the mixture sampling path against the truth.
                match s.next_event(&mut rng, u64::MAX / 2) {
                    SparseStep::Event { edge, .. } => {
                        assert!(truth[edge] > 0, "sampled zero-weight edge {edge}");
                    }
                    SparseStep::Horizon => unreachable!(),
                }
            }
            let pending_before = s.pending.len();
            s.end_event();
            if s.pending.is_empty() && pending_before > 0 {
                flushes += 1;
                // Flushed: the tree must equal a from-scratch rebuild.
                let rebuilt = FenwickSampler::new(&truth);
                assert_eq!(s.fenwick.weights(), rebuilt.weights(), "step {step}");
                assert_eq!(s.fenwick.total(), rebuilt.total(), "step {step}");
            }
        }
        assert!(flushes > 10, "only {flushes} flushes exercised");
    }

    /// The mixture sampler (sidecar + rejection on the stale tree) must
    /// reproduce the exact weighted law while the tree is stale.
    #[test]
    fn stale_tree_sampling_matches_true_weights() {
        let m = 32usize;
        let w = sparse_weights(m, &[(2, 2), (10, 1), (21, 2)]);
        let mut s = SparseSkipper::new(&w);
        // Make the tree stale: move weight around without flushing.
        s.set_weight(2, 0);
        s.set_weight(4, 2);
        s.set_weight(10, 2);
        // True weights now: e4 = 2, e10 = 2, e21 = 2 (tree still has the
        // originals).
        let mut rng = SimRng::new(5);
        let mut counts = std::collections::HashMap::new();
        let n = 60_000;
        for _ in 0..n {
            *counts.entry(s.sample_edge(&mut rng)).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 3, "sampled edges {counts:?}");
        for e in [4usize, 10, 21] {
            let c = counts[&e] as f64 / n as f64;
            assert!(
                (c - 1.0 / 3.0).abs() < 0.01,
                "edge {e} frequency {c} (expected 1/3)"
            );
        }
    }

    #[test]
    fn hysteresis_thresholds() {
        let w = sparse_weights(64, &[(0, 2)]); // 2m = 128
        let mut s = SparseSkipper::new(&w);
        assert!(!s.should_exit_to_dense()); // W = 2: 2·32 < 128
        s.set_weight(1, 2);
        assert!(s.should_exit_to_dense()); // W = 4: 4·32 ≥ 128
    }

    #[test]
    fn orientation_respects_active_sides() {
        let mut rng = SimRng::new(9);
        assert_eq!(orient_event(&mut rng, 1, 2, true, false), (1, 2));
        assert_eq!(orient_event(&mut rng, 1, 2, false, true), (2, 1));
        let mut a_first = 0;
        for _ in 0..1000 {
            if orient_event(&mut rng, 1, 2, true, true) == (1, 2) {
                a_first += 1;
            }
        }
        assert!((350..=650).contains(&a_first), "two-sided split {a_first}");
    }

    #[test]
    fn saturated_weight_skips_nothing() {
        // Every orientation active: p = 1, no no-ops to skip.
        let w = vec![2u64; 8];
        let mut s = SparseSkipper::new(&w);
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            match s.next_event(&mut rng, 10) {
                SparseStep::Event { consumed, .. } => assert_eq!(consumed, 1),
                SparseStep::Horizon => panic!("horizon at p = 1"),
            }
        }
    }
}
