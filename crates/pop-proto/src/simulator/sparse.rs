//! Shared block-leaping sparse-phase engine for the graph simulators.
//!
//! [`GraphSimulator`](super::GraphSimulator),
//! [`BatchGraphSimulator`](super::BatchGraphSimulator) and
//! [`ParGraphSimulator`](super::ParGraphSimulator) handle
//! no-op-dominated stretches the same way: a Fenwick tree over per-edge
//! *active-orientation* weights turns the embedded no-op runs into exact
//! geometric skips (success probability `W / 2m`) and effective events into
//! weighted draws. Until PR 5 each engine carried its own copy of that
//! machinery and paid O(d log m) Fenwick point-updates on **every**
//! effective event. This module is the one shared implementation, made
//! block-leaping:
//!
//! * **Incremental clean weight.** The exact total active weight `W` is
//!   maintained as a plain counter (`w_true`), so the skip probability and
//!   the silence test (`W == 0`) never wait on the tree.
//! * **Deferred, coalesced Fenwick updates.** An effective event changes
//!   the weights of the ≤ 2d edges incident to its endpoints. Instead of
//!   walking the tree for each, the new weights are parked in a small
//!   *pending sidecar* (edge → exact current weight, plus the tree's stale
//!   value) and the tree is left stale. Once per block —
//!   [`FLUSH_EVENTS`] events, or earlier if the sidecar grows past
//!   [`PENDING_MAX`] — the sidecar is applied to the tree in one batched
//!   pass that skips every edge whose weight returned to its stored tree
//!   value. On frontier dynamics (a cycle or torus boundary walking back
//!   and forth) most per-event deltas cancel within a block, so the tree
//!   sees a small fraction of the point-updates the per-event engines paid.
//! * **Exact sampling from the stale tree, no rejection.** An effective
//!   event's edge is resolved from **one** uniform draw below `W`. When
//!   the active set is small enough at sparse entry ([`TRACK_MAX`]), the
//!   sidecar is seeded with the *entire* active set ("tracked" mode) and
//!   the draw resolves by a plain prefix scan of the edge-sorted sidecar
//!   — no tree access at all. Otherwise a Fenwick descent over
//!   *corrected* node sums ([`FenwickSampler::find_adjusted`]) is used:
//!   the sidecar's per-edge deltas (`true − tree`), rebuilt lazily into a
//!   sorted prefix-sum array when the first draw after a weight change
//!   needs them, correct each visited node on the way down. Either way
//!   the selected edge is a pure function of the draw and the *true*
//!   weights — exactly what a fully-materialized tree would yield — so
//!   the trajectory is bit-identical whether updates are deferred,
//!   applied immediately, or adaptively mixed (see [`DeferralPolicy`]),
//!   and no draw is ever rejected.
//! * **Adaptive deferral.** Coalescing pays only when deltas actually
//!   cancel before the flush. The skipper measures its own flush-time
//!   cancel rate over a rolling window of [`ADAPT_WINDOW`] flushes
//!   (reported as [`SparseStats::cancel_rate`]) and, when the rate falls
//!   below [`BYPASS_CANCEL_MIN`], bypasses the sidecar entirely —
//!   immediate Fenwick point-updates, zero sidecar bookkeeping — then
//!   re-probes deferral after [`BYPASS_PROBE_EVENTS`] events. Because the
//!   sampler is draw-identical either way, the mode switch is invisible to
//!   the trajectory (pinned by test below).
//! * **Negative-binomial block totals.** The no-op run before each event is
//!   still an exact `Geom(W/2m)` draw, but consecutive events of a block
//!   usually leave `W` unchanged (a moving frontier keeps the same number
//!   of active orientations), so the block's aggregate skip is one
//!   negative-binomial-style total: the inversion constant `ln(1 − p)` is
//!   computed once per distinct `W` and reused across the block
//!   ([`SimRng::negative_binomial`] is the same aggregation in one call,
//!   and the distributional tests below pin the two against each other),
//!   and the caller charges the interaction clock once per block.
//!
//! Exactness is unchanged from the per-event skipper: the skip law, the
//! weighted event draw, and the silence test all see the *true* weights at
//! every event — only the tree's materialization of them is deferred. The
//! phase-hysteresis constants ([`SPARSE_TRIGGER_NOOPS`],
//! [`DENSE_ENTER_INV`]) live here too, so the two engines cannot drift
//! apart.
//!
//! The skipper also owns its slice of the engine-telemetry layer
//! ([`crate::telemetry`]): every draw, flush, deferred/immediate update,
//! coalesced entry, and bypass transition increments a
//! [`SparseStats`] counter, harvested by the owning engine via
//! [`SparseSkipper::take_stats`] at advancement boundaries.

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::sampling::FenwickSampler;
use crate::telemetry::timeline::EventHistograms;
use crate::telemetry::SparseStats;
use sim_stats::rng::SimRng;

/// Consecutive no-op draws in the dense/block phase that trigger the switch
/// to the sparse skipper. At activity fraction `f` the probability of this
/// many consecutive no-ops is `(1 − f)^1024` — negligible above `f ≈ 1/64`,
/// near-certain once the fraction truly collapses, so spurious O(m)
/// rebuilds are rare and real collapses are caught within ~1k steps.
pub(crate) const SPARSE_TRIGGER_NOOPS: u32 = 1024;

/// Activity fraction at which the sparse phase drops its Fenwick tree and
/// returns to dense stepping: skipping `< 32` no-ops per event no longer
/// repays the sparse bookkeeping. The wide hysteresis band versus
/// [`SPARSE_TRIGGER_NOOPS`] (~1/1024) prevents rebuild thrash.
pub(crate) const DENSE_ENTER_INV: u64 = 32;

/// Effective events between batched Fenwick flushes (the sparse block
/// length). Large enough that a wandering frontier's weight deltas get a
/// real chance to cancel before the tree is touched, small enough that the
/// sidecar scan stays a few cache lines.
const FLUSH_EVENTS: u32 = 64;

/// Sidecar capacity bound: a flush is forced before the pending list
/// outgrows one page worth of entries, keeping the delta-correction array
/// small even on high-degree graphs where one event parks 2d edges.
const PENDING_MAX: usize = 512;

/// Sidecar size above which toggled-back entries (weight equal to the
/// tree's again) are evicted eagerly. Small sidecars rebuild their delta
/// array in a couple of cache lines, so eviction bookkeeping would cost
/// more than it saves; large ones (high-degree frontiers) shrink
/// measurably. Untracked mode only — the tracked sidecar must keep every
/// active edge to preserve its coverage invariant.
const EVICT_ABOVE: usize = 48;

/// Active-edge count at sparse entry below which the sidecar is seeded
/// with the *entire* active set ("tracked" mode): with every edge of
/// nonzero true weight in the sidecar, an event draw resolves by a plain
/// prefix scan of the (edge-sorted) sidecar — no Fenwick descent, no
/// delta corrections — and weight updates are O(1) in-place writes. This
/// is the frontier regime the skipper exists for (a cycle or torus
/// boundary keeps `W` in the tens), and the scan touches a couple of
/// cache lines.
const TRACK_MAX: usize = 256;

/// Tracked-mode sidecar length up to which draws use the prefix scan;
/// longer tracked sidecars fall back to the corrected descent (the scan
/// is linear, the descent logarithmic — the crossover sits around a
/// cache line's worth of entries).
const SCAN_MAX: usize = 64;

/// Tracked sidecar length (post-flush, zero-weight entries dropped) above
/// which tracked mode is abandoned: the active set has outgrown the
/// sidecar bounds, so the tree — fully materialized by the flush — takes
/// over and deferral continues in untracked mode.
const TRACK_DROP: usize = 512;

/// Flushes per adaptive-deferral measurement window: the cancel rate is
/// evaluated once this many flushes (≈ `ADAPT_WINDOW · FLUSH_EVENTS`
/// events) have been observed, then the window resets.
const ADAPT_WINDOW: u32 = 8;

/// Resolved sidecar entries (applied + cancelled) that end a measurement
/// window early. High-churn low-cancel workloads (a torus patch perimeter
/// parking ~4 edges per event) gather a trustworthy cancel estimate within
/// a couple of flushes — evaluating then, instead of waiting out
/// [`ADAPT_WINDOW`] flushes, keeps the expensive deferral probes short.
/// High-cancel workloads resolve only a handful of entries per flush and
/// fall back to the flush-count window.
const RESOLVED_WINDOW: u64 = 256;

/// Cancel-rate floor below which deferral is bypassed: when fewer than a
/// quarter of flush-resolved sidecar entries had toggled back, coalescing
/// saves less than the sidecar costs (measured on the torus endgame, where
/// an eroding patch perimeter almost never revisits an edge within a
/// block) and immediate point-updates win.
const BYPASS_CANCEL_MIN: f64 = 0.25;

/// Events spent in bypass before re-probing deferral. Long enough that the
/// bypass duty cycle dominates (~99% at the default window), short enough
/// that a regime flip back to frontier churn is caught within a few tens
/// of thousands of events.
const BYPASS_PROBE_EVENTS: u64 = 32_768;

/// Maximum effective events [`BatchGraphSimulator`](super::BatchGraphSimulator)
/// applies per sparse advancement (its sparse-phase observation
/// granularity — one block checkpoint summarizes up to this many events).
/// [`GraphSimulator`](super::GraphSimulator) keeps its exact per-event
/// granularity by advancing one event at a time; the Fenwick amortization
/// above is shared either way because the sidecar persists across calls.
pub(crate) const SPARSE_BLOCK_EVENTS: u64 = 64;

/// How the skipper materializes weight changes into its Fenwick tree.
/// [`DeferralPolicy::Adaptive`] (the default) defers through the sidecar
/// and bypasses when the measured cancel rate says coalescing cannot pay;
/// the two fixed policies exist for tests and measurement, and all three
/// produce **identical trajectories** for a fixed seed (the sampler is a
/// pure function of the draw and the true weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// The fixed policies are only pinned from tests; production construction
// is always `Adaptive`.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) enum DeferralPolicy {
    /// Measure the flush-time cancel rate and switch modes accordingly.
    Adaptive,
    /// Always defer through the sidecar (the PR 5 behavior).
    AlwaysDefer,
    /// Always apply point-updates immediately (the pre-PR 5 behavior).
    AlwaysBypass,
}

/// One pending (deferred) weight entry: the edge, its exact current
/// weight, the stale value still in the tree (captured at insertion, so
/// flush-time cancellation is a plain compare), and the flush generation
/// that last touched it (tracked-mode entries persist across flushes;
/// the generation tells a flush which untouched entries to skip in its
/// cancel accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    edge: u32,
    gen: u32,
    w: u64,
    w_tree: u64,
}

/// Outcome of one sparse advancement attempt against a horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SparseStep {
    /// The next effective event lands beyond the horizon: the first `max`
    /// scheduled interactions are conditionally all no-ops (truncated
    /// geometric — still exact). The caller charges the full horizon.
    Horizon,
    /// An effective event: `consumed` scheduled interactions (the geometric
    /// no-op run plus the event itself) and the event's edge, drawn from
    /// the exact conditional law (∝ current active-orientation weight).
    Event {
        /// Scheduled interactions consumed (skipped no-ops + 1).
        consumed: u64,
        /// The effective edge index.
        edge: usize,
    },
}

/// The shared sparse-phase engine: a Fenwick tree over per-edge
/// active-orientation weights with deferred, coalesced, adaptively
/// bypassed updates. See the module docs for the machinery and its
/// exactness argument.
#[derive(Debug, Clone)]
pub(crate) struct SparseSkipper {
    /// Fenwick tree over edge weights; **stale** on pending edges.
    fenwick: FenwickSampler,
    /// Exact total active weight `W`, maintained incrementally.
    w_true: u64,
    /// Pending sidecar, **sorted by edge**. Untracked mode: edges whose
    /// true weight the tree does not reflect. Tracked mode: every edge of
    /// nonzero true weight (the coverage invariant), clean or not,
    /// persisting across flushes.
    pending: Vec<Pending>,
    /// Edge → sidecar slot (`u32::MAX` = not in the sidecar).
    pending_idx: Vec<u32>,
    /// Whether the sidecar covers the whole active set (see [`TRACK_MAX`]):
    /// draws resolve by prefix scan and the delta scratch is never needed
    /// while the sidecar stays short.
    tracked: bool,
    /// Flush generation, for tracked-mode cancel accounting.
    flush_gen: u32,
    /// Scratch for the corrected descent: sorted `(edge, cumulative
    /// delta)` over the sidecar's divergent entries (`w != w_tree`),
    /// rebuilt lazily — one linear pass over the already-sorted sidecar,
    /// no sort — when a draw needs it and the sidecar changed since.
    deltas: Vec<(u32, i64)>,
    /// Whether `deltas` is out of date with the sidecar.
    delta_dirty: bool,
    /// Effective events since the last flush.
    events_since_flush: u32,
    /// Total scheduled orientations `2m` (the skip denominator).
    two_m: u64,
    /// `W` value the cached inversion constant corresponds to
    /// (`u64::MAX` = none cached).
    cached_w: u64,
    /// Cached `ln(1 − W/2m)` for the geometric inversion.
    cached_ln_q: f64,
    /// Deferral policy (adaptive by default; fixed modes for tests).
    policy: DeferralPolicy,
    /// Whether deferral is currently bypassed (immediate point-updates).
    bypass: bool,
    /// Events left before a bypass phase re-probes deferral.
    probe_events: u64,
    /// Flushes observed in the current adaptive measurement window.
    window_flushes: u32,
    /// Window sidecar entries applied to the tree.
    win_applied: u64,
    /// Window sidecar entries cancelled (coalesced away).
    win_cancelled: u64,
    /// Telemetry counters, harvested via [`SparseSkipper::take_stats`].
    stats: SparseStats,
    /// Per-event histograms (skip lengths, block totals, flush sizes),
    /// recorded only when the owning engine enabled them — `None` costs
    /// one branch per harvest site.
    hist: Option<Box<EventHistograms>>,
    /// No-ops skipped in the current histogram block (hist enabled only).
    block_noops: u64,
    /// Events in the current histogram block (hist enabled only).
    block_events: u32,
}

impl SparseSkipper {
    /// Build from a scan of the current per-edge active-orientation
    /// weights (entering the sparse phase). When the active set is small
    /// enough it is seeded into the sidecar whole — tracked mode — so the
    /// frontier regime samples by prefix scan from the first event.
    pub(crate) fn new(weights: &[u64]) -> Self {
        let fenwick = FenwickSampler::new(weights);
        let w_true = fenwick.total();
        let mut pending = Vec::new();
        let mut pending_idx = vec![u32::MAX; weights.len()];
        let active = weights.iter().filter(|&&w| w > 0).count();
        let tracked = active <= TRACK_MAX;
        if tracked {
            for (e, &w) in weights.iter().enumerate() {
                if w > 0 {
                    pending_idx[e] = pending.len() as u32;
                    pending.push(Pending {
                        edge: e as u32,
                        gen: u32::MAX,
                        w,
                        w_tree: w,
                    });
                }
            }
        }
        SparseSkipper {
            fenwick,
            w_true,
            pending,
            pending_idx,
            tracked,
            flush_gen: 0,
            deltas: Vec::new(),
            delta_dirty: false,
            events_since_flush: 0,
            two_m: 2 * weights.len() as u64,
            cached_w: u64::MAX,
            cached_ln_q: 0.0,
            policy: DeferralPolicy::Adaptive,
            bypass: false,
            probe_events: 0,
            window_flushes: 0,
            win_applied: 0,
            win_cancelled: 0,
            stats: SparseStats::new(),
            hist: None,
            block_noops: 0,
            block_events: 0,
        }
    }

    /// Enable or disable per-event histogram recording (fresh histograms
    /// on enable, dropped on disable). The owning engine mirrors its own
    /// histogram flag onto every skipper it creates.
    pub(crate) fn set_histograms(&mut self, enabled: bool) {
        self.hist = if enabled {
            Some(Box::new(EventHistograms::new()))
        } else {
            None
        };
        self.block_noops = 0;
        self.block_events = 0;
    }

    /// The histograms recorded since [`SparseSkipper::set_histograms`]
    /// enabled them (`None` when recording is off). The owning engine
    /// merges these into its own at phase exits and boundary reads.
    pub(crate) fn histograms(&self) -> Option<&EventHistograms> {
        self.hist.as_deref()
    }

    /// Exact total active weight `W` (0 iff silent). O(1).
    #[inline]
    pub(crate) fn total(&self) -> u64 {
        self.w_true
    }

    /// Exact current weight of edge `e` (sidecar if pending, tree
    /// otherwise).
    #[inline]
    pub(crate) fn weight(&self, e: usize) -> u64 {
        let slot = self.pending_idx[e];
        if slot == u32::MAX {
            self.fenwick.weight(e)
        } else {
            self.pending[slot as usize].w
        }
    }

    /// Whether activity has recovered past the hysteresis threshold and
    /// the engine should drop the tree and re-enter its dense phase.
    #[inline]
    pub(crate) fn should_exit_to_dense(&self) -> bool {
        self.w_true * DENSE_ENTER_INV >= self.two_m
    }

    /// Zero-and-return the accumulated telemetry counters. The owning
    /// engine calls this at every advancement boundary (and before
    /// dropping the skipper on a sparse → dense exit) and absorbs the
    /// batch into its [`EngineTelemetry`](crate::telemetry::EngineTelemetry).
    #[inline]
    pub(crate) fn take_stats(&mut self) -> SparseStats {
        std::mem::take(&mut self.stats)
    }

    /// Pin the deferral policy (tests and measurement; the default is
    /// [`DeferralPolicy::Adaptive`]). Switching to a fixed mode flushes
    /// any pending entries first so the mode invariant (bypass ⇒ empty
    /// sidecar) holds.
    #[cfg(test)]
    pub(crate) fn set_policy(&mut self, policy: DeferralPolicy) {
        self.policy = policy;
        match policy {
            DeferralPolicy::AlwaysBypass => {
                self.flush();
                self.drop_sidecar();
                self.bypass = true;
            }
            DeferralPolicy::AlwaysDefer => {
                self.bypass = false;
            }
            DeferralPolicy::Adaptive => {}
        }
    }

    /// Record edge `e`'s new true weight. In deferral mode the tree is not
    /// touched: the weight is parked in the sidecar (no-op when unchanged;
    /// an edge whose weight returns to its tree entry stays harmlessly
    /// pending until the next flush while the sidecar is small, and is
    /// evicted eagerly once it grows past [`EVICT_ABOVE`] — either way no
    /// false negatives, possible false positives, the dense leaper's
    /// dirty-bitmap convention). In bypass mode the point-update is
    /// applied immediately.
    #[inline]
    pub(crate) fn set_weight(&mut self, e: usize, new_w: u64) {
        if self.bypass {
            let old = self.fenwick.weight(e);
            if old == new_w {
                return;
            }
            self.w_true = self.w_true - old + new_w;
            self.fenwick.set(e, new_w);
            self.stats.updates_immediate += 1;
            return;
        }
        let slot = self.pending_idx[e];
        if slot != u32::MAX {
            let entry = self.pending[slot as usize];
            if entry.w == new_w {
                return;
            }
            self.w_true = self.w_true - entry.w + new_w;
            self.stats.updates_deferred += 1;
            self.delta_dirty = true;
            if !self.tracked && self.pending.len() > EVICT_ABOVE && entry.w_tree == new_w {
                // The weight toggled back to the tree's value (frontier
                // edges do this constantly): once an untracked sidecar is
                // big enough that its delta rebuilds cost more than the
                // eviction bookkeeping, drop the entry so it holds only
                // truly-divergent edges. Below the bound keeping the
                // entry is cheaper than the removal; a tracked sidecar
                // never evicts (coverage invariant).
                self.stats.entries_cancelled += 1;
                self.win_cancelled += 1;
                self.remove_slot(slot as usize);
                return;
            }
            let entry = &mut self.pending[slot as usize];
            entry.w = new_w;
            entry.gen = self.flush_gen;
        } else {
            let old = self.fenwick.weight(e);
            if old == new_w {
                return;
            }
            self.insert_sorted(Pending {
                edge: e as u32,
                gen: self.flush_gen,
                w: new_w,
                w_tree: old,
            });
            self.w_true = self.w_true - old + new_w;
            self.stats.updates_deferred += 1;
            self.delta_dirty = true;
        }
    }

    /// Insert a sidecar entry at its edge-sorted position, shifting the
    /// slot map for the displaced tail. O(p) memmove — new edges are the
    /// rare case (a frontier mostly rewrites entries in place).
    fn insert_sorted(&mut self, entry: Pending) {
        let i = self.pending.partition_point(|p| p.edge < entry.edge);
        self.pending.insert(i, entry);
        for p in &self.pending[i..] {
            self.pending_idx[p.edge as usize] = self.pending_idx[p.edge as usize].wrapping_add(1);
        }
        self.pending_idx[entry.edge as usize] = i as u32;
    }

    /// Remove the sidecar entry at `slot`, shifting the slot map for the
    /// tail. Untracked eviction only.
    fn remove_slot(&mut self, slot: usize) {
        let edge = self.pending[slot].edge;
        self.pending.remove(slot);
        self.pending_idx[edge as usize] = u32::MAX;
        for p in &self.pending[slot..] {
            self.pending_idx[p.edge as usize] -= 1;
        }
    }

    /// Apply the sidecar's divergent entries to the tree in one batched
    /// pass, counting an entry *cancelled* when its weight returned to the
    /// stored tree value (untracked) or when it was touched this block but
    /// ended where the tree already has it (tracked). Untracked mode then
    /// clears the sidecar; tracked mode keeps the still-active entries —
    /// now all clean — and drops only the dead (zero-weight) ones, so the
    /// coverage invariant survives the flush. Feeds the adaptive
    /// cancel-rate window.
    pub(crate) fn flush(&mut self) {
        self.events_since_flush = 0;
        if self.pending.is_empty() {
            return;
        }
        let occupancy = self.pending.len() as u64;
        let applied_before = self.stats.entries_applied;
        self.stats.flushes += 1;
        self.window_flushes += 1;
        if self.tracked {
            let mut kept = 0usize;
            for i in 0..self.pending.len() {
                let Pending {
                    edge,
                    gen,
                    w,
                    w_tree,
                } = self.pending[i];
                if w != w_tree {
                    self.fenwick.set(edge as usize, w);
                    self.stats.entries_applied += 1;
                    self.win_applied += 1;
                } else if gen == self.flush_gen {
                    self.stats.entries_cancelled += 1;
                    self.win_cancelled += 1;
                }
                if w > 0 {
                    // Compact in place; the slot map is rebuilt below.
                    self.pending[kept] = Pending {
                        edge,
                        gen,
                        w,
                        w_tree: w,
                    };
                    kept += 1;
                } else {
                    self.pending_idx[edge as usize] = u32::MAX;
                }
            }
            self.pending.truncate(kept);
            for (i, p) in self.pending.iter().enumerate() {
                self.pending_idx[p.edge as usize] = i as u32;
            }
            self.flush_gen = self.flush_gen.wrapping_add(1);
            if self.pending.len() > TRACK_DROP {
                // The active set outgrew the sidecar: the tree is fully
                // materialized as of this flush, so hand over to it.
                self.drop_sidecar();
            }
        } else {
            for i in 0..self.pending.len() {
                let Pending {
                    edge, w, w_tree, ..
                } = self.pending[i];
                self.pending_idx[edge as usize] = u32::MAX;
                if w != w_tree {
                    self.fenwick.set(edge as usize, w);
                    self.stats.entries_applied += 1;
                    self.win_applied += 1;
                } else {
                    self.stats.entries_cancelled += 1;
                    self.win_cancelled += 1;
                }
            }
            self.pending.clear();
        }
        self.deltas.clear();
        self.delta_dirty = false;
        debug_assert_eq!(self.fenwick.total(), self.w_true, "flush lost weight");
        if let Some(h) = &mut self.hist {
            h.flush_occupancy.add_u64(occupancy);
            h.flush_size
                .add_u64(self.stats.entries_applied - applied_before);
        }
        self.maybe_enter_bypass();
    }

    /// Abandon the sidecar after a flush has materialized every entry into
    /// the tree (tracked → untracked demotion, and bypass entry). The
    /// entries are all clean at this point, so clearing loses nothing.
    fn drop_sidecar(&mut self) {
        debug_assert!(self.pending.iter().all(|p| p.w == p.w_tree));
        for p in &self.pending {
            self.pending_idx[p.edge as usize] = u32::MAX;
        }
        self.pending.clear();
        self.deltas.clear();
        self.delta_dirty = false;
        self.tracked = false;
    }

    /// Adaptive decision point, evaluated at flush boundaries: once a full
    /// measurement window has elapsed — [`ADAPT_WINDOW`] flushes, or
    /// earlier once [`RESOLVED_WINDOW`] sidecar entries have been resolved
    /// (low-cancel workloads fill their sidecars fast, and the sooner the
    /// estimate is trusted the shorter the expensive probe) — bypass
    /// deferral when the measured cancel rate says coalescing cannot pay.
    #[inline]
    fn maybe_enter_bypass(&mut self) {
        if self.policy != DeferralPolicy::Adaptive {
            return;
        }
        let resolved = self.win_applied + self.win_cancelled;
        if self.window_flushes < ADAPT_WINDOW && resolved < RESOLVED_WINDOW {
            return;
        }
        let cancelled = self.win_cancelled;
        self.window_flushes = 0;
        self.win_applied = 0;
        self.win_cancelled = 0;
        if resolved > 0 && (cancelled as f64) < BYPASS_CANCEL_MIN * resolved as f64 {
            // The flush that called us materialized every divergent entry,
            // so the sidecar (tracked mode keeps its clean entries) can be
            // dropped wholesale.
            self.drop_sidecar();
            self.bypass = true;
            self.probe_events = BYPASS_PROBE_EVENTS;
            self.stats.bypass_enters += 1;
        }
    }

    /// End-of-event bookkeeping: count the event, flush when the block is
    /// full or the sidecar has outgrown its bound, and run the bypass
    /// probe countdown. (Staleness between flushes is free: the corrected
    /// descent never rejects, so no stale-mass flush trigger is needed.)
    #[inline]
    pub(crate) fn end_event(&mut self) {
        self.stats.events += 1;
        if self.bypass {
            if self.policy == DeferralPolicy::Adaptive {
                self.probe_events = self.probe_events.saturating_sub(1);
                if self.probe_events == 0 {
                    self.bypass = false;
                    self.stats.bypass_exits += 1;
                }
            }
            return;
        }
        self.events_since_flush += 1;
        if self.events_since_flush >= FLUSH_EVENTS || self.pending.len() >= PENDING_MAX {
            self.flush();
        }
    }

    /// Exact geometric no-op run length before the next effective event
    /// (`p = W/2m`), with the inversion constant cached per distinct `W` —
    /// across a block whose events leave `W` unchanged this makes the
    /// aggregate skip one negative-binomial-style total (see the module
    /// docs). Precondition: `W > 0`.
    #[inline]
    fn skip_len(&mut self, rng: &mut SimRng) -> u64 {
        debug_assert!(self.w_true > 0, "skip from a silent configuration");
        if self.w_true >= self.two_m {
            return 0; // every orientation active: p = 1
        }
        if self.cached_w != self.w_true {
            let p = self.w_true as f64 / self.two_m as f64;
            self.cached_ln_q = (-p).ln_1p();
            self.cached_w = self.w_true;
            self.stats.log_cache_misses += 1;
        } else {
            self.stats.log_cache_hits += 1;
        }
        self.stats.skip_draws += 1;
        let u = loop {
            let u = rng.f64();
            if u > 0.0 {
                break u;
            }
        };
        let g = (u.ln() / self.cached_ln_q).floor();
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Sample an edge with probability proportional to its **true** weight
    /// from a single uniform draw below `W` — always the exact
    /// prefix-order selection a fully-materialized tree would make for
    /// the same draw, whatever mode the skipper is in, which is what
    /// keeps trajectories identical across deferral policies and sidecar
    /// modes. Short tracked sidecars (the frontier regime) resolve by a
    /// plain prefix scan; everything else by the corrected Fenwick
    /// descent (see the module docs). Precondition: `W > 0`.
    #[inline]
    fn sample_edge(&mut self, rng: &mut SimRng) -> usize {
        debug_assert!(self.w_true > 0, "sampling from a silent configuration");
        self.stats.event_draws += 1;
        let mut u = rng.below(self.w_true);
        if self.tracked && self.pending.len() <= SCAN_MAX {
            // Coverage invariant: all of `W` lives in the (edge-sorted)
            // sidecar, so the prefix scan IS the tree's prefix order.
            for p in &self.pending {
                if u < p.w {
                    return p.edge as usize;
                }
                u -= p.w;
            }
            unreachable!("tracked sidecar lost active mass");
        }
        if self.pending.is_empty() {
            return self.fenwick.find(u);
        }
        if self.delta_dirty {
            // One linear pass over the already-sorted sidecar — divergent
            // entries only, no sort.
            self.deltas.clear();
            let mut acc = 0i64;
            for p in &self.pending {
                let d = p.w as i64 - p.w_tree as i64;
                if d != 0 {
                    acc += d;
                    self.deltas.push((p.edge, acc));
                }
            }
            self.delta_dirty = false;
        }
        let ds = &self.deltas;
        if ds.is_empty() {
            return self.fenwick.find(u);
        }
        // Most descent queries fall outside the (tight, frontier-local)
        // delta range: answer those in O(1) and binary-search the rest.
        let lo = ds[0].0 as usize;
        let (hi, full) = {
            let last = ds[ds.len() - 1];
            (last.0 as usize, last.1)
        };
        self.fenwick.find_adjusted(u, |x| {
            if x <= lo {
                0
            } else if x > hi {
                full
            } else {
                match ds.partition_point(|&(e, _)| (e as usize) < x) {
                    0 => 0,
                    i => ds[i - 1].1,
                }
            }
        })
    }

    /// One sparse advancement against a horizon of `max` scheduled
    /// interactions: geometrically skip the no-op run and either hand back
    /// the effective edge (drawn from the exact conditional law) or report
    /// that the event lands beyond the horizon. The caller applies the
    /// transition, reports weight changes via [`SparseSkipper::set_weight`],
    /// and closes the event with [`SparseSkipper::end_event`].
    /// Precondition: `W > 0`, `max > 0`.
    #[inline]
    pub(crate) fn next_event(&mut self, rng: &mut SimRng, max: u64) -> SparseStep {
        debug_assert!(max > 0);
        let skipped = self.skip_len(rng);
        if let Some(h) = &mut self.hist {
            // Every geometric draw is a genuine Geom(W/2m) sample, horizon
            // truncation included (memorylessness makes the redraw exact).
            h.skip_len.add_u64(skipped);
        }
        if skipped >= max {
            return SparseStep::Horizon;
        }
        if let Some(h) = self.hist.as_mut() {
            // Per-block scheduled no-op totals: the sum of FLUSH_EVENTS
            // consecutive skip runs — negative-binomial at constant W.
            self.block_noops += skipped;
            self.block_events += 1;
            if self.block_events >= FLUSH_EVENTS {
                h.block_total.add_u64(self.block_noops);
                self.block_noops = 0;
                self.block_events = 0;
            }
        }
        SparseStep::Event {
            consumed: skipped + 1,
            edge: self.sample_edge(rng),
        }
    }

    /// Verify the skipper against ground-truth per-edge weights: every
    /// edge's tracked weight, the incremental total, the sidecar's stored
    /// tree values, and (for clean edges) the tree entries must all be
    /// consistent. O(m); used by the property tests.
    pub(crate) fn check_consistent(&self, truth: &[u64]) -> Result<(), String> {
        if truth.len() != self.fenwick.len() {
            return Err(format!(
                "edge count mismatch: {} vs {}",
                truth.len(),
                self.fenwick.len()
            ));
        }
        if self.bypass && !self.pending.is_empty() {
            return Err(format!(
                "bypass mode with {} pending entries",
                self.pending.len()
            ));
        }
        let mut total = 0u64;
        for (e, &w) in truth.iter().enumerate() {
            total += w;
            if self.weight(e) != w {
                return Err(format!(
                    "edge {e}: tracked weight {} != true weight {w}",
                    self.weight(e)
                ));
            }
            let slot = self.pending_idx[e];
            if slot == u32::MAX {
                if self.fenwick.weight(e) != w {
                    return Err(format!(
                        "clean edge {e}: stale tree entry {} != true weight {w}",
                        self.fenwick.weight(e)
                    ));
                }
            } else {
                let p = self.pending[slot as usize];
                if p.edge as usize != e {
                    return Err(format!("sidecar slot {slot} does not point back at {e}"));
                }
                if p.w_tree != self.fenwick.weight(e) {
                    return Err(format!(
                        "sidecar edge {e}: stored tree value {} != tree entry {}",
                        p.w_tree,
                        self.fenwick.weight(e)
                    ));
                }
            }
        }
        if total != self.w_true {
            return Err(format!(
                "incremental total {} != Σ true {total}",
                self.w_true
            ));
        }
        // The sidecar is sorted by edge in both modes.
        for pair in self.pending.windows(2) {
            if pair[0].edge >= pair[1].edge {
                return Err(format!(
                    "sidecar out of edge order: {} then {}",
                    pair[0].edge, pair[1].edge
                ));
            }
        }
        // Tracked coverage invariant: every edge with nonzero true weight
        // is in the sidecar.
        if self.tracked {
            for (e, &w) in truth.iter().enumerate() {
                if w > 0 && self.pending_idx[e] == u32::MAX {
                    return Err(format!("tracked mode lost active edge {e} (weight {w})"));
                }
            }
        }
        // The descent scratch, when current: sorted, divergent entries
        // only, and each cumulative step must equal the edge's true − tree
        // gap.
        if !self.delta_dirty {
            let mut prev_cum = 0i64;
            for (i, &(e, cum)) in self.deltas.iter().enumerate() {
                if i > 0 && self.deltas[i - 1].0 >= e {
                    return Err(format!("delta scratch out of order at slot {i}"));
                }
                let individual = cum - prev_cum;
                prev_cum = cum;
                let expected = truth[e as usize] as i64 - self.fenwick.weight(e as usize) as i64;
                if individual != expected {
                    return Err(format!(
                        "delta for edge {e}: {individual} != true − tree {expected}"
                    ));
                }
            }
            for p in &self.pending {
                if p.w != p.w_tree && self.deltas.binary_search_by_key(&p.edge, |d| d.0).is_err() {
                    return Err(format!("divergent edge {} missing from deltas", p.edge));
                }
            }
        }
        Ok(())
    }

    /// Serialize the full skipper state into a checkpoint body: mode and
    /// hysteresis scalars, the adaptive-deferral window, telemetry,
    /// histograms, and the pending sidecar (with each entry's stale tree
    /// value, so the restored tree can be rebuilt stale exactly where the
    /// original was). The Fenwick tree itself and the descent scratch are
    /// *not* serialized — both are deterministic functions of the true
    /// weights and the sidecar, and [`SparseSkipper::read_snapshot`]
    /// reconstructs them.
    pub(crate) fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_bool(self.tracked);
        w.put_u32(self.flush_gen);
        w.put_u32(self.events_since_flush);
        w.put_u64(self.cached_w);
        w.put_f64(self.cached_ln_q);
        w.put_bool(self.bypass);
        w.put_u64(self.probe_events);
        w.put_u32(self.window_flushes);
        w.put_u64(self.win_applied);
        w.put_u64(self.win_cancelled);
        w.put_u64(self.block_noops);
        w.put_u32(self.block_events);
        for v in [
            self.stats.events,
            self.stats.skip_draws,
            self.stats.event_draws,
            self.stats.flushes,
            self.stats.updates_deferred,
            self.stats.updates_immediate,
            self.stats.entries_applied,
            self.stats.entries_cancelled,
            self.stats.log_cache_hits,
            self.stats.log_cache_misses,
            self.stats.bypass_enters,
            self.stats.bypass_exits,
        ] {
            w.put_u64(v);
        }
        w.put_u64(self.pending.len() as u64);
        for p in &self.pending {
            w.put_u32(p.edge);
            w.put_u32(p.gen);
            w.put_u64(p.w);
            w.put_u64(p.w_tree);
        }
        match &self.hist {
            Some(h) => {
                w.put_bool(true);
                h.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
    }

    /// Rebuild a skipper from a snapshot plus the ground-truth per-edge
    /// active-orientation weights (recomputed by the owning engine from
    /// its restored states). The Fenwick tree is rebuilt with each pending
    /// edge held at its recorded stale value, the descent scratch is left
    /// dirty (its lazy rebuild is deterministic), and the result is
    /// validated against `truth` with [`SparseSkipper::check_consistent`]
    /// — a corrupt sidecar becomes a clean error, never a wrong
    /// trajectory. The deferral policy restores to `Adaptive` (the only
    /// production value).
    pub(crate) fn read_snapshot(
        truth: &[u64],
        r: &mut SnapshotReader<'_>,
    ) -> Result<SparseSkipper, CheckpointError> {
        let tracked = r.get_bool()?;
        let flush_gen = r.get_u32()?;
        let events_since_flush = r.get_u32()?;
        let cached_w = r.get_u64()?;
        let cached_ln_q = r.get_f64()?;
        let bypass = r.get_bool()?;
        let probe_events = r.get_u64()?;
        let window_flushes = r.get_u32()?;
        let win_applied = r.get_u64()?;
        let win_cancelled = r.get_u64()?;
        let block_noops = r.get_u64()?;
        let block_events = r.get_u32()?;
        let mut stats = SparseStats::new();
        for slot in [
            &mut stats.events,
            &mut stats.skip_draws,
            &mut stats.event_draws,
            &mut stats.flushes,
            &mut stats.updates_deferred,
            &mut stats.updates_immediate,
            &mut stats.entries_applied,
            &mut stats.entries_cancelled,
            &mut stats.log_cache_hits,
            &mut stats.log_cache_misses,
            &mut stats.bypass_enters,
            &mut stats.bypass_exits,
        ] {
            *slot = r.get_u64()?;
        }
        let count = r.get_u64()? as usize;
        let mut pending = Vec::new();
        let mut pending_idx = vec![u32::MAX; truth.len()];
        let mut tree_weights = truth.to_vec();
        for i in 0..count {
            let edge = r.get_u32()?;
            let gen = r.get_u32()?;
            let w = r.get_u64()?;
            let w_tree = r.get_u64()?;
            if (edge as usize) >= truth.len() {
                return Err(CheckpointError::Corrupt(format!(
                    "sidecar edge {edge} out of range ({} edges)",
                    truth.len()
                )));
            }
            if pending_idx[edge as usize] != u32::MAX {
                return Err(CheckpointError::Corrupt(format!(
                    "sidecar edge {edge} appears twice"
                )));
            }
            pending_idx[edge as usize] = i as u32;
            tree_weights[edge as usize] = w_tree;
            pending.push(Pending {
                edge,
                gen,
                w,
                w_tree,
            });
        }
        let hist = if r.get_bool()? {
            Some(Box::new(EventHistograms::read_snapshot(r)?))
        } else {
            None
        };
        let fenwick = FenwickSampler::new(&tree_weights);
        let out = SparseSkipper {
            fenwick,
            w_true: truth.iter().sum(),
            pending,
            pending_idx,
            tracked,
            flush_gen,
            deltas: Vec::new(),
            delta_dirty: true,
            events_since_flush,
            two_m: 2 * truth.len() as u64,
            cached_w,
            cached_ln_q,
            policy: DeferralPolicy::Adaptive,
            bypass,
            probe_events,
            window_flushes,
            win_applied,
            win_cancelled,
            stats,
            hist,
            block_noops,
            block_events,
        };
        out.check_consistent(truth)
            .map_err(CheckpointError::Corrupt)?;
        Ok(out)
    }
}

/// Orient an effective event on edge `(a, b)`: when both orientations are
/// active pick one uniformly, otherwise take the single active one.
/// `a_active` / `b_active` report whether `(a → b)` / `(b → a)` change the
/// configuration; at least one must hold.
#[inline]
pub(crate) fn orient_event(
    rng: &mut SimRng,
    a: usize,
    b: usize,
    a_active: bool,
    b_active: bool,
) -> (usize, usize) {
    debug_assert!(a_active || b_active, "orienting an inactive edge");
    if a_active && b_active {
        if rng.bernoulli(0.5) {
            (a, b)
        } else {
            (b, a)
        }
    } else if a_active {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_stats::histogram::LogHistogram;
    use sim_stats::ks::{ks_critical_value, ks_statistic};

    /// Two-sample KS statistic over identically-binned histograms: the
    /// max CDF gap evaluated at the bin boundaries. A lower bound on the
    /// unbinned statistic, so rejecting against the standard critical
    /// value keeps the nominal α (the test only loses power, never size).
    fn binned_ks(a: &LogHistogram, b: &LogHistogram) -> f64 {
        assert_eq!(a.counts().len(), b.counts().len());
        let (na, nb) = (a.total() as f64, b.total() as f64);
        let mut ca = a.non_positive() as f64;
        let mut cb = b.non_positive() as f64;
        let mut d = (ca / na - cb / nb).abs();
        for (&x, &y) in a.counts().iter().zip(b.counts()) {
            ca += x as f64;
            cb += y as f64;
            d = d.max((ca / na - cb / nb).abs());
        }
        d
    }

    /// A weight vector with the sparse-phase shape: mostly zeros, a few
    /// active edges of weight 1 or 2.
    fn sparse_weights(m: usize, active: &[(usize, u64)]) -> Vec<u64> {
        let mut w = vec![0u64; m];
        for &(e, v) in active {
            w[e] = v;
        }
        w
    }

    #[test]
    fn skipper_tracks_totals_and_weights() {
        let w = sparse_weights(16, &[(3, 2), (7, 1), (12, 2)]);
        let mut s = SparseSkipper::new(&w);
        assert_eq!(s.total(), 5);
        assert_eq!(s.weight(3), 2);
        assert_eq!(s.weight(0), 0);
        s.set_weight(3, 0);
        s.set_weight(0, 1);
        assert_eq!(s.total(), 4);
        assert_eq!(s.weight(3), 0);
        assert_eq!(s.weight(0), 1);
        // The tree has not been flushed: entries are stale but tracked
        // weights are exact.
        let truth = sparse_weights(16, &[(0, 1), (7, 1), (12, 2)]);
        s.check_consistent(&truth).unwrap();
        s.flush();
        s.check_consistent(&truth).unwrap();
        // Telemetry saw the two deferred updates and the flush.
        let stats = s.take_stats();
        assert_eq!(stats.updates_deferred, 2);
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.entries_applied, 2);
        assert_eq!(stats.entries_cancelled, 0);
        // take_stats zeroes.
        assert_eq!(s.take_stats(), SparseStats::new());
    }

    /// Satellite property test: a block's aggregated skip total must match
    /// the sum of per-event geometric draws distributionally. The
    /// reference is [`SimRng::negative_binomial`] — by construction the
    /// sum of `r` independent geometric inversions — compared by
    /// two-sample KS at α = 0.01.
    #[test]
    fn block_skip_totals_match_negative_binomial_ks() {
        let m = 64usize;
        let active: Vec<(usize, u64)> = vec![(5, 2), (17, 1), (30, 2), (44, 1), (60, 2)];
        let w = sparse_weights(m, &active);
        let p = 8.0 / (2 * m) as f64; // W = 8, 2m = 128
        let blocks = 400usize;
        let r = 16u64;

        let mut s = SparseSkipper::new(&w);
        let mut rng = SimRng::new(1234);
        let engine: Vec<f64> = (0..blocks)
            .map(|_| {
                let mut total = 0u64;
                for _ in 0..r {
                    match s.next_event(&mut rng, u64::MAX / 2) {
                        SparseStep::Event { consumed, .. } => total += consumed - 1,
                        SparseStep::Horizon => unreachable!("horizon at u64::MAX/2"),
                    }
                    // Weights never change: the whole block runs at one W,
                    // the regime where the aggregate is negative binomial.
                    s.end_event();
                }
                total as f64
            })
            .collect();

        let mut ref_rng = SimRng::new(98_765);
        let reference: Vec<f64> = (0..blocks)
            .map(|_| ref_rng.negative_binomial(r, p) as f64)
            .collect();

        let d = ks_statistic(&engine, &reference);
        let crit = ks_critical_value(engine.len(), reference.len(), 0.01);
        assert!(
            d < crit,
            "block skip totals vs NB({r}, {p}): KS {d:.4} >= critical {crit:.4}"
        );
        // Constant W across the whole run: the inversion constant was
        // computed once and reused for every remaining draw.
        let stats = s.take_stats();
        assert_eq!(stats.log_cache_misses, 1);
        assert_eq!(stats.skip_draws, stats.log_cache_hits + 1);
    }

    /// Satellite property test: after every batched block apply (flush) the
    /// Fenwick weights must be consistent with a from-scratch rebuild —
    /// and tracked weights must stay exact even between flushes. Pinned to
    /// [`DeferralPolicy::AlwaysDefer`] so the adaptive bypass cannot
    /// starve the flush path this test exists to exercise.
    #[test]
    fn fenwick_matches_rebuild_after_every_flush() {
        let m = 48usize;
        let mut truth = sparse_weights(m, &[(1, 1), (9, 2), (20, 1), (33, 2), (40, 1)]);
        let mut s = SparseSkipper::new(&truth);
        s.set_policy(DeferralPolicy::AlwaysDefer);
        let mut rng = SimRng::new(77);
        let mut flushes = 0u32;
        for step in 0..4_000u64 {
            // Mutate a few random edges (an event's incident re-weighting).
            for _ in 0..3 {
                let e = rng.index(m);
                let nw = rng.below(3);
                s.set_weight(e, nw);
                truth[e] = nw;
            }
            s.check_consistent(&truth).unwrap_or_else(|msg| {
                panic!("step {step} (pre-event): {msg}");
            });
            if s.total() > 0 {
                // Exercise the corrected-descent sampling path against the
                // truth.
                match s.next_event(&mut rng, u64::MAX / 2) {
                    SparseStep::Event { edge, .. } => {
                        assert!(truth[edge] > 0, "sampled zero-weight edge {edge}");
                    }
                    SparseStep::Horizon => unreachable!(),
                }
            }
            let flushes_before = s.stats.flushes;
            s.end_event();
            if s.stats.flushes > flushes_before {
                flushes += 1;
                // Flushed: the tree must equal a from-scratch rebuild.
                let rebuilt = FenwickSampler::new(&truth);
                assert_eq!(s.fenwick.weights(), rebuilt.weights(), "step {step}");
                assert_eq!(s.fenwick.total(), rebuilt.total(), "step {step}");
            }
        }
        assert!(flushes > 10, "only {flushes} flushes exercised");
    }

    /// The corrected-descent sampler must reproduce the exact weighted law
    /// while the tree is stale.
    #[test]
    fn stale_tree_sampling_matches_true_weights() {
        let m = 32usize;
        let w = sparse_weights(m, &[(2, 2), (10, 1), (21, 2)]);
        let mut s = SparseSkipper::new(&w);
        // Make the tree stale: move weight around without flushing.
        s.set_weight(2, 0);
        s.set_weight(4, 2);
        s.set_weight(10, 2);
        // True weights now: e4 = 2, e10 = 2, e21 = 2 (tree still has the
        // originals).
        let mut rng = SimRng::new(5);
        let mut counts = std::collections::HashMap::new();
        let n = 60_000;
        for _ in 0..n {
            *counts.entry(s.sample_edge(&mut rng)).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 3, "sampled edges {counts:?}");
        for e in [4usize, 10, 21] {
            let c = counts[&e] as f64 / n as f64;
            assert!(
                (c - 1.0 / 3.0).abs() < 0.01,
                "edge {e} frequency {c} (expected 1/3)"
            );
        }
    }

    /// Regression pin for the adaptive deferral (satellite): all three
    /// deferral policies must produce *identical* trajectories — the same
    /// skip lengths, the same edges, the same RNG consumption, the same
    /// final weights — for a fixed seed. This is what makes the adaptive
    /// bypass a pure performance decision.
    #[test]
    fn deferral_policies_produce_identical_trajectories() {
        let m = 64usize;
        let init = sparse_weights(m, &[(3, 1), (17, 2), (30, 1), (51, 2)]);
        let run = |policy: DeferralPolicy| -> (Vec<(u64, usize)>, Vec<u64>) {
            let mut s = SparseSkipper::new(&init);
            s.set_policy(policy);
            let mut truth = init.clone();
            let mut rng = SimRng::new(4242);
            let mut events = Vec::new();
            for _ in 0..3_000 {
                let (consumed, edge) = match s.next_event(&mut rng, u64::MAX / 2) {
                    SparseStep::Event { consumed, edge } => (consumed, edge),
                    SparseStep::Horizon => unreachable!(),
                };
                events.push((consumed, edge));
                // Deterministic frontier-ish dynamics: toggle the event
                // edge between weights 1 and 2 and toggle a neighbor in
                // and out of activity — plenty of cancellation for the
                // defer path, plenty of churn for the bypass path.
                truth[edge] = 3 - truth[edge]; // 1 ↔ 2
                s.set_weight(edge, truth[edge]);
                let j = (edge + 1) % m;
                truth[j] = if truth[j] == 0 { 1 } else { 0 };
                s.set_weight(j, truth[j]);
                s.end_event();
                s.check_consistent(&truth).unwrap();
            }
            // The RNG streams must line up exactly, not just the events.
            events.push((rng.below(1 << 30), 0));
            (events, truth)
        };
        let (ev_adaptive, w_adaptive) = run(DeferralPolicy::Adaptive);
        let (ev_defer, w_defer) = run(DeferralPolicy::AlwaysDefer);
        let (ev_bypass, w_bypass) = run(DeferralPolicy::AlwaysBypass);
        assert_eq!(ev_adaptive, ev_defer, "adaptive vs always-defer");
        assert_eq!(ev_adaptive, ev_bypass, "adaptive vs always-bypass");
        assert_eq!(w_adaptive, w_defer);
        assert_eq!(w_adaptive, w_bypass);
    }

    /// The adaptive policy must actually engage on a low-cancel stream
    /// (every flush applies everything) and stay out of the way on a
    /// high-cancel stream (every entry toggles back before the flush).
    #[test]
    fn adaptive_bypass_follows_the_measured_cancel_rate() {
        // Low cancel: each event moves weight to a fresh edge, so nothing
        // ever toggles back — cancel rate 0, bypass must engage and its
        // immediate updates must start counting.
        let m = 2048usize;
        let mut s = SparseSkipper::new(&sparse_weights(m, &[(0, 1)]));
        for step in 0..4_096usize {
            let e = (step + 1) % m;
            s.set_weight(e, 1 + ((step + step / m) as u64 % 2));
            s.end_event();
        }
        let stats = s.take_stats();
        assert!(stats.bypass_enters >= 1, "bypass never engaged: {stats:?}");
        assert!(stats.updates_immediate > 0);
        assert_eq!(stats.cancel_rate(), 0.0);

        // High cancel: every entry toggles back before its flush — the
        // measured rate is ~1 and deferral must stay on.
        let mut s = SparseSkipper::new(&sparse_weights(64, &[(5, 1)]));
        for _ in 0..4_096usize {
            s.set_weight(9, 2);
            s.set_weight(9, 0);
            s.end_event();
        }
        let stats = s.take_stats();
        assert_eq!(stats.bypass_enters, 0, "bypassed a coalescing regime");
        assert_eq!(stats.updates_immediate, 0);
        assert!(stats.cancel_rate() > 0.99, "rate {}", stats.cancel_rate());
    }

    /// A bypass phase re-probes deferral after its countdown.
    #[test]
    fn bypass_probes_back_into_deferral() {
        let m = 2048usize;
        let mut s = SparseSkipper::new(&sparse_weights(m, &[(0, 1)]));
        // Long low-cancel stream: enough events for enter → probe → exit
        // and a second enter (measure window ≈ [`RESOLVED_WINDOW`] events,
        // probe [`BYPASS_PROBE_EVENTS`]).
        // The value flips on every revisit of an edge, so the stream keeps
        // producing real (never-cancelling) updates across probe cycles.
        for step in 0..2 * (BYPASS_PROBE_EVENTS as usize + 2_048) {
            let e = (step + 1) % m;
            s.set_weight(e, 1 + ((step + step / m) as u64 % 2));
            s.end_event();
        }
        let stats = s.take_stats();
        assert!(stats.bypass_enters >= 2, "{stats:?}");
        assert!(stats.bypass_exits >= 1, "{stats:?}");
    }

    /// Tentpole acceptance pin: the skip-length histogram the flight
    /// recorder exposes must be distributed Geom(W/2m) at constant W —
    /// the recorded samples are compared against directly-inverted
    /// geometric draws by binned two-sample KS at α = 0.01.
    #[test]
    fn recorded_skip_lengths_match_geometric_ks() {
        let m = 64usize;
        let w = sparse_weights(m, &[(5, 2), (17, 1), (30, 2), (44, 1), (60, 2)]);
        let p = 8.0 / (2 * m) as f64; // W = 8, 2m = 128
        let draws = 4_000usize;
        let mut s = SparseSkipper::new(&w);
        s.set_histograms(true);
        let mut rng = SimRng::new(2024);
        for _ in 0..draws {
            match s.next_event(&mut rng, u64::MAX / 2) {
                SparseStep::Event { .. } => s.end_event(),
                SparseStep::Horizon => unreachable!("horizon at u64::MAX/2"),
            }
        }
        let recorded = s.histograms().expect("histograms enabled");
        assert_eq!(recorded.skip_len.total(), draws as u64);

        let mut reference = EventHistograms::new();
        let mut ref_rng = SimRng::new(55_555);
        for _ in 0..draws {
            reference.skip_len.add_u64(ref_rng.geometric(p));
        }
        let d = binned_ks(&recorded.skip_len, &reference.skip_len);
        let crit = ks_critical_value(draws, draws, 0.01);
        assert!(
            d < crit,
            "recorded skip lengths vs Geom({p}): KS {d:.4} >= critical {crit:.4}"
        );
    }

    /// Tentpole acceptance pin: the per-block no-op totals recorded into
    /// the `block_total` histogram (FLUSH_EVENTS consecutive skips at
    /// constant W) must be negative-binomial — compared against
    /// [`SimRng::negative_binomial`] by binned two-sample KS at α = 0.01.
    #[test]
    fn recorded_block_totals_match_negative_binomial_ks() {
        let m = 64usize;
        let w = sparse_weights(m, &[(5, 2), (17, 1), (30, 2), (44, 1), (60, 2)]);
        let p = 8.0 / (2 * m) as f64;
        let blocks = 300usize;
        let mut s = SparseSkipper::new(&w);
        s.set_histograms(true);
        let mut rng = SimRng::new(31_415);
        for _ in 0..blocks * FLUSH_EVENTS as usize {
            match s.next_event(&mut rng, u64::MAX / 2) {
                SparseStep::Event { .. } => s.end_event(),
                SparseStep::Horizon => unreachable!("horizon at u64::MAX/2"),
            }
        }
        let recorded = s.histograms().expect("histograms enabled");
        assert_eq!(recorded.block_total.total(), blocks as u64);

        let mut reference = EventHistograms::new();
        let mut ref_rng = SimRng::new(27_182);
        for _ in 0..blocks {
            reference
                .block_total
                .add_u64(ref_rng.negative_binomial(FLUSH_EVENTS as u64, p));
        }
        let d = binned_ks(&recorded.block_total, &reference.block_total);
        let crit = ks_critical_value(blocks, blocks, 0.01);
        assert!(
            d < crit,
            "recorded block totals vs NB({FLUSH_EVENTS}, {p}): KS {d:.4} >= critical {crit:.4}"
        );
    }

    /// Histogram recording must not perturb the trajectory: identical
    /// seeds with and without histograms produce identical event streams,
    /// and disabled recording leaves no histogram behind.
    #[test]
    fn histograms_do_not_perturb_the_trajectory() {
        let m = 64usize;
        let init = sparse_weights(m, &[(3, 1), (17, 2), (30, 1), (51, 2)]);
        let run = |record: bool| -> Vec<(u64, usize)> {
            let mut s = SparseSkipper::new(&init);
            s.set_histograms(record);
            let mut truth = init.clone();
            let mut rng = SimRng::new(777);
            let mut events = Vec::new();
            for _ in 0..2_000 {
                let (consumed, edge) = match s.next_event(&mut rng, u64::MAX / 2) {
                    SparseStep::Event { consumed, edge } => (consumed, edge),
                    SparseStep::Horizon => unreachable!(),
                };
                events.push((consumed, edge));
                truth[edge] = 3 - truth[edge];
                s.set_weight(edge, truth[edge]);
                s.end_event();
            }
            events.push((rng.below(1 << 30), 0));
            if record {
                let h = s.histograms().expect("enabled");
                assert_eq!(h.skip_len.total(), 2_000);
                assert!(h.flush_size.total() > 0, "no flush recorded");
            } else {
                assert!(s.histograms().is_none());
            }
            events
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn hysteresis_thresholds() {
        let w = sparse_weights(64, &[(0, 2)]); // 2m = 128
        let mut s = SparseSkipper::new(&w);
        assert!(!s.should_exit_to_dense()); // W = 2: 2·32 < 128
        s.set_weight(1, 2);
        assert!(s.should_exit_to_dense()); // W = 4: 4·32 ≥ 128
    }

    #[test]
    fn orientation_respects_active_sides() {
        let mut rng = SimRng::new(9);
        assert_eq!(orient_event(&mut rng, 1, 2, true, false), (1, 2));
        assert_eq!(orient_event(&mut rng, 1, 2, false, true), (2, 1));
        let mut a_first = 0;
        for _ in 0..1000 {
            if orient_event(&mut rng, 1, 2, true, true) == (1, 2) {
                a_first += 1;
            }
        }
        assert!((350..=650).contains(&a_first), "two-sided split {a_first}");
    }

    #[test]
    fn saturated_weight_skips_nothing() {
        // Every orientation active: p = 1, no no-ops to skip.
        let w = vec![2u64; 8];
        let mut s = SparseSkipper::new(&w);
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            match s.next_event(&mut rng, 10) {
                SparseStep::Event { consumed, .. } => assert_eq!(consumed, 1),
                SparseStep::Horizon => panic!("horizon at p = 1"),
            }
        }
    }
}
