//! Exact simulators for population protocols.
//!
//! * [`AgentSimulator`] — tracks each agent's state individually and asks a
//!   [`Scheduler`](crate::scheduler::Scheduler) for agent pairs: the literal
//!   model, O(1) per interaction but O(n) memory, and the ground-truth
//!   oracle for equivalence testing.
//! * [`CountSimulator`] — tracks only per-state counts and samples the
//!   interacting *states* directly from the counts (first state ∝ count,
//!   second ∝ count with the first agent removed). For the uniform clique
//!   scheduler this induces exactly the same Markov chain on count
//!   configurations, at O(k) memory and O(log k) time per interaction.

mod agentwise;
mod countwise;

pub use agentwise::{AgentSimulator, InteractionRecord};
pub use countwise::CountSimulator;
