//! Exact simulators for population protocols.
//!
//! Five backends simulate the same Markov chains at different cost models:
//!
//! * [`AgentSimulator`] — tracks each agent's state individually and asks a
//!   [`Scheduler`](crate::scheduler::Scheduler) for agent pairs: the literal
//!   model, O(1) per interaction but O(n) memory, and the ground-truth
//!   oracle for equivalence testing. Works with any scheduler, clique or
//!   graph-restricted.
//! * [`CountSimulator`] — tracks only per-state counts and samples the
//!   interacting *states* directly from the counts (first state ∝ count,
//!   second ∝ count with the first agent removed). For the uniform clique
//!   scheduler this induces exactly the same Markov chain on count
//!   configurations, at O(k) memory and O(log k) time per interaction.
//! * [`BatchSimulator`] — leaps over whole blocks of interactions at once
//!   by sampling the multinomial split of ordered state-pairs for a
//!   collision-free batch (no agent interacting twice), applying
//!   transitions count-wise, and handling the first colliding interaction
//!   exactly; no-op-dominated phases use geometric skip-ahead instead.
//!   O(k² + √n) work per ~√n interactions — sub-constant time per
//!   interaction, the enabler for n ≥ 10⁸ runs. Clique only.
//! * [`GraphSimulator`] — the graph-topology counterpart of the leaping
//!   engines: per-agent states plus a Fenwick tree over per-edge *active*
//!   (non-no-op) orientation counts, skipping geometrically over no-op
//!   stretches and paying O(d log m) per **effective** interaction. The
//!   fast exact engine for no-op-dominated
//!   [`GraphScheduler`](crate::scheduler::GraphScheduler) topologies.
//! * [`BatchGraphSimulator`] — multi-event leaping on graphs: pre-generates
//!   whole blocks of the (configuration-independent) scheduled draw
//!   sequence, applies every draw whose edge is vertex-disjoint from the
//!   block's earlier effective edges from block-start states (a matching),
//!   and falls back to a literal step at the first shared endpoint. The
//!   fast exact engine for *effective-dominated* graph regimes (expanders);
//!   hands off to the shared sparse skipper (the same one
//!   [`GraphSimulator`] uses, driven a block of events at a time) when
//!   no-ops dominate. [`WideBatchGraphSimulator`] is its u16 state-packing
//!   fallback for protocols with more than 256 states.
//! * [`ParGraphSimulator`] — the multi-core graph engine: dense blocks of
//!   position-derived draws (each a pure function of a per-block seed and
//!   its position, so trajectories are bit-identical for any thread
//!   count) applied across BFS-cut spatial domains on the persistent
//!   `sim_stats` worker pool, with cross-domain conflicts replayed in
//!   schedule order and the same sparse-skipper endgame.
//!
//! The graph engines' sparse phases share one block-leaping implementation
//! (the private `sparse` module): a Fenwick tree over per-edge
//! active-orientation weights with the total maintained incrementally,
//! geometric no-op skips whose per-block aggregates are negative-binomial
//! totals, and tree updates deferred into coalesced batched passes behind
//! a no-false-negative dirty-edge sidecar.
//!
//! The [`Simulator`] trait unifies them so drivers, experiments, the
//! CLI, and benches can select a backend generically; its
//! [`advance_observed`](Simulator::advance_observed) hook additionally
//! drives a [`SimObserver`] at every
//! configuration-changing advancement boundary, giving observer-driven
//! experiments (lemma probes, trace recorders, crossing detectors) one
//! backend-agnostic entry point — exact per-effective-event on the
//! single-event engines, block-checkpoint on the leaping ones (see
//! [`observe`](crate::observe)).

mod agentwise;
mod batched;
mod batched_graph;
mod countwise;
mod graphwise;
mod par_graph;
mod replica;
mod sparse;

pub use agentwise::{AgentSimulator, InteractionRecord};
pub use batched::BatchSimulator;
pub use batched_graph::{BatchGraphSimulator, StateWord, WideBatchGraphSimulator};
pub use countwise::CountSimulator;
pub use graphwise::{shuffled_layout, GraphSimulator};
pub use par_graph::ParGraphSimulator;
pub use replica::{BitwiseProtocol, ReplicaSimulator, MAX_LANES, MAX_PLANES};

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::config::CountConfig;
use crate::observe::{Observation, SimObserver};

/// Stable per-engine tags and header helpers for the snapshot format.
///
/// Every engine's [`Simulator::snapshot_state`] payload starts with its
/// tag byte plus a `(n, |Σ|)` configuration echo, and
/// [`Simulator::restore_state`] validates both against the live simulator
/// — restoring a payload into the wrong engine or the wrong configuration
/// is a clean [`CheckpointError::Corrupt`], never silent wrong state. The
/// tag values are part of the on-disk format: never renumber them.
pub mod snapshot_tags {
    use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};

    /// [`AgentSimulator`](super::AgentSimulator).
    pub const AGENT: u8 = 1;
    /// [`CountSimulator`](super::CountSimulator).
    pub const COUNT: u8 = 2;
    /// [`BatchSimulator`](super::BatchSimulator).
    pub const BATCH: u8 = 3;
    /// [`GraphSimulator`](super::GraphSimulator).
    pub const GRAPH: u8 = 4;
    /// [`BatchGraphSimulator`](super::BatchGraphSimulator) (u8 states).
    pub const BATCH_GRAPH: u8 = 5;
    /// [`WideBatchGraphSimulator`](super::WideBatchGraphSimulator)
    /// (u16 states).
    pub const WIDE_BATCH_GRAPH: u8 = 6;
    /// The sequential USD wrapper in `usd-core` (`SequentialGeneric`).
    pub const USD_SEQ: u8 = 7;
    /// The skip-ahead USD wrapper in `usd-core` (`SkipAheadGeneric`).
    pub const USD_SKIP: u8 = 8;
    /// [`ReplicaSimulator`](super::ReplicaSimulator) (bit-parallel
    /// replica lanes).
    pub const REPLICA: u8 = 9;
    /// [`ParGraphSimulator`](super::ParGraphSimulator) (sharded
    /// multi-core graph engine).
    pub const PAR_GRAPH: u8 = 10;

    /// Name of a tag for error messages.
    pub fn name(tag: u8) -> &'static str {
        match tag {
            AGENT => "agent",
            COUNT => "count",
            BATCH => "batch",
            GRAPH => "graph",
            BATCH_GRAPH => "batchgraph",
            WIDE_BATCH_GRAPH => "batchgraph-wide",
            USD_SEQ => "seq",
            USD_SKIP => "skip",
            REPLICA => "replica",
            PAR_GRAPH => "pargraph",
            _ => "unknown",
        }
    }

    /// Read an engine tag and require it to be `expected`.
    pub fn expect(
        r: &mut SnapshotReader<'_>,
        expected: u8,
        engine: &str,
    ) -> Result<(), CheckpointError> {
        let tag = r.get_u8()?;
        if tag != expected {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot is for engine '{}' (tag {tag}), not '{engine}'",
                name(tag)
            )));
        }
        Ok(())
    }

    /// Write the `(n, |Σ|)` configuration echo that follows the tag.
    pub fn write_config(w: &mut SnapshotWriter, n: u64, num_states: usize) {
        w.put_u64(n);
        w.put_u32(num_states as u32);
    }

    /// Read the configuration echo and require it to match the live
    /// simulator.
    pub fn expect_config(
        r: &mut SnapshotReader<'_>,
        n: u64,
        num_states: usize,
    ) -> Result<(), CheckpointError> {
        let sn = r.get_u64()?;
        let sk = r.get_u32()? as usize;
        if sn != n || sk != num_states {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot configuration (n={sn}, k={sk}) does not match the \
                 simulator (n={n}, k={num_states})"
            )));
        }
        Ok(())
    }
}
use crate::telemetry::timeline::EventHistograms;
use crate::telemetry::EngineTelemetry;
use sim_stats::rng::SimRng;

/// Common interface of the simulation backends.
///
/// All backends expose the same observable state — population, per-state
/// counts, the interaction clock — and the same drivers. The trait is
/// object-safe, so callers can hold a `Box<dyn Simulator>` chosen at
/// runtime (e.g. from a `--backend` flag).
///
/// # Advancement granularity
///
/// [`Simulator::step`] always simulates exactly one interaction.
/// [`Simulator::advance`] lets a backend move the interaction clock by many
/// interactions in one call when it can do so exactly (batch leaping,
/// geometric no-op skipping); single-interaction backends default to one
/// step. [`Simulator::run_until`] consequently evaluates its stop predicate
/// at advancement boundaries: for `CountSimulator`/`AgentSimulator` that is
/// after every interaction; for `BatchSimulator` it is after every batch,
/// except that the batch backend shrinks its leaps near silence so that
/// stabilization times stay exact (see the `batched` module docs for the
/// precise guarantee).
pub trait Simulator {
    /// Population size `n`.
    fn population(&self) -> u64;

    /// Number of protocol states |Σ|.
    fn num_states(&self) -> usize;

    /// Current per-state counts (dense state indexing, length |Σ|).
    fn counts(&self) -> &[u64];

    /// Total interactions simulated (including no-ops).
    fn interactions(&self) -> u64;

    /// Interactions that changed the configuration.
    fn effective_interactions(&self) -> u64;

    /// Simulate exactly one interaction; returns whether it changed the
    /// configuration.
    fn step(&mut self, rng: &mut SimRng) -> bool;

    /// Advance the interaction clock by at most `max` interactions,
    /// returning how many were simulated (0 when `max == 0`, or when a
    /// backend certifies the configuration silent and stops the clock —
    /// callers treat 0 as termination and confirm via
    /// [`Simulator::is_silent`]).
    ///
    /// The default advances one interaction via [`Simulator::step`];
    /// leaping backends override [`Simulator::advance_changed`].
    fn advance(&mut self, rng: &mut SimRng, max: u64) -> u64 {
        self.advance_changed(rng, max).0
    }

    /// [`Simulator::advance`] that also reports whether the counts changed
    /// during the advancement. Drivers use the flag to skip re-evaluating
    /// stop predicates and the (O(|Σ|²)) silence check after advancements
    /// that provably left the configuration untouched — both are pure
    /// functions of the counts, so nothing can have changed their value.
    fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        if max == 0 {
            return (0, false);
        }
        let changed = self.step(rng);
        (1, changed)
    }

    /// Whether the configuration is silent (no interaction can change it).
    fn is_silent(&self) -> bool;

    /// Engine telemetry accumulated over this simulator's lifetime: what
    /// the *engine* did (phases, blocks, draws, flushes, fallbacks) to
    /// simulate what the counters above report the *protocol* did. All
    /// seven backends override this; the default returns a shared all-zero
    /// instance so external `Simulator` implementations keep compiling.
    /// Counters a backend has no mechanism for stay zero — see the
    /// per-backend table in `usd_core::backend`.
    fn telemetry(&self) -> &EngineTelemetry {
        EngineTelemetry::disabled()
    }

    /// Enable or disable coarse per-phase wall-clock spans in
    /// [`Simulator::telemetry`]. A no-op unless the engine records spans
    /// *and* the `span-timing` cargo feature is compiled in (see
    /// [`crate::telemetry`]); off by default, so un-instrumented runs
    /// never read the clock.
    fn set_span_timing(&mut self, _enabled: bool) {}

    /// Enable or disable per-event histogram recording
    /// ([`EventHistograms`]): skip lengths, block totals/sizes, sidecar
    /// flush sizes, fallback runs. Off by default — the harvest sites then
    /// cost one branch on a `None` — and a no-op on engines without
    /// instrumented quantities. Enabling mid-run starts fresh histograms;
    /// disabling discards them.
    fn set_histograms(&mut self, _enabled: bool) {}

    /// The per-event histograms recorded since
    /// [`Simulator::set_histograms`] enabled them, merged across the
    /// engine's phases (e.g. dense matching blocks plus every sparse
    /// skipper incarnation). `None` when recording is off or the engine
    /// records nothing. Returned by value for object safety.
    fn histograms(&self) -> Option<EventHistograms> {
        None
    }

    /// Serialize the engine's complete resume-relevant state — agent
    /// states or occupation counts, interaction clocks, phase/hysteresis
    /// state, sparse-sidecar contents, telemetry counters, and histogram
    /// buckets — into a checkpoint body, such that
    /// [`Simulator::restore_state`] on a freshly constructed simulator of
    /// the same configuration reproduces the uninterrupted run
    /// byte-for-byte (the RNG is owned by the driver and snapshotted
    /// separately via `SimRng::state`). All seven backends override this;
    /// the default keeps external `Simulator` implementations compiling
    /// and reports [`CheckpointError::Unsupported`].
    fn snapshot_state(&self, _w: &mut SnapshotWriter) -> Result<(), CheckpointError> {
        Err(CheckpointError::Unsupported)
    }

    /// Restore state written by [`Simulator::snapshot_state`] into this
    /// simulator, which must have been constructed with the same
    /// configuration (protocol, population, topology). Configuration
    /// mismatches and structurally invalid payloads return
    /// [`CheckpointError::Corrupt`] — never a panic, never silently wrong
    /// state; on error the simulator must be discarded.
    fn restore_state(&mut self, _r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        Err(CheckpointError::Unsupported)
    }

    /// Number of independent replica lanes this simulator advances under
    /// its shared schedule. Scalar engines run exactly one; the
    /// bit-parallel [`ReplicaSimulator`] runs up to 64, with
    /// [`Simulator::counts`] and the clocks reporting **lane aggregates**
    /// (see its module docs for the semantics).
    fn lanes(&self) -> u32 {
        1
    }

    /// Per-state counts of one replica lane (dense state indexing,
    /// length |Σ|). Lane indices range over `0..lanes()`; scalar engines
    /// only have lane 0, whose counts are [`Simulator::counts`]. Returned
    /// by value for object safety.
    fn lane_counts(&self, lane: u32) -> Vec<u64> {
        assert_eq!(lane, 0, "scalar simulators have exactly one lane");
        self.counts().to_vec()
    }

    /// The interaction clock at which `lane` stabilized (its private
    /// clock — for replica engines the shared draw clock, directly
    /// comparable to a scalar run's [`Simulator::interactions`]), or
    /// `None` while it is still running.
    fn lane_stabilized_at(&self, lane: u32) -> Option<u64> {
        assert_eq!(lane, 0, "scalar simulators have exactly one lane");
        self.is_silent().then(|| self.interactions())
    }

    /// The current value of every live lane's private interaction clock:
    /// [`Simulator::interactions`] on scalar engines, the shared draw
    /// clock on replica engines (where the aggregate interaction clock
    /// advances by `popcount(live)` per draw). The clock an unstabilized
    /// lane's outcome is reported at.
    fn lane_clock(&self) -> u64 {
        self.interactions()
    }

    /// Snapshot the current count configuration.
    fn config(&self) -> CountConfig {
        CountConfig::from_counts(self.counts().to_vec())
    }

    /// Parallel time elapsed (= interactions / n).
    fn parallel_time(&self) -> f64 {
        self.interactions() as f64 / self.population() as f64
    }

    /// Drive the simulator until `stop` returns true on the counts, the
    /// configuration is silent, or `budget` interactions have been
    /// simulated. Returns the number of interactions simulated by this
    /// call.
    ///
    /// `stop` is evaluated at advancement boundaries (see the trait docs),
    /// and only after advancements that changed the counts — stop
    /// predicates and silence are functions of the counts, so skipping
    /// unchanged boundaries is exact and keeps the single-step backends'
    /// no-op interactions O(1). Silence ends the run immediately — a
    /// silent configuration can never change, so there is nothing left to
    /// observe.
    fn run_until(
        &mut self,
        rng: &mut SimRng,
        budget: u64,
        stop: &mut dyn FnMut(&[u64]) -> bool,
    ) -> u64 {
        if stop(self.counts()) {
            return 0;
        }
        // A stop predicate is exactly an observer that ends the run: the
        // shared advance_observed driver owns the budget/termination/
        // silence edge cases once.
        self.advance_observed(rng, budget, &mut |obs: &Observation<'_>| !stop(obs.counts))
    }

    /// [`Simulator::run_until`] with silence as the only stop condition:
    /// runs to stabilization. Returns the interaction count at silence (or
    /// at budget exhaustion) and whether the run stabilized.
    fn run_to_silence(&mut self, rng: &mut SimRng, budget: u64) -> (u64, bool) {
        self.run_until(rng, budget, &mut |_| false);
        (self.interactions(), self.is_silent())
    }

    /// Drive the simulator for up to `budget` interactions, offering the
    /// `observer` an [`Observation`] at every
    /// advancement boundary that changed the counts: the current counts (a
    /// state checkpoint), the cumulative scheduled/effective counters, and
    /// the deltas since the previous observation. The call ends at budget
    /// exhaustion, silence, or when the observer returns `false`; it
    /// returns the number of interactions simulated.
    ///
    /// Observation granularity is the backend's advancement granularity —
    /// exact per-effective-event on the single-event engines
    /// (`agent`/`count`/`graph` and the USD wrappers), block-boundary
    /// checkpoints on the leaping engines (`batch`/`batchgraph`); see the
    /// [`observe`](crate::observe) module docs for the per-backend table.
    /// [`SimObserver::max_stride`] bounds the scheduled interactions per
    /// advancement, forcing a finer checkpoint cadence on the leaping
    /// engines.
    fn advance_observed(
        &mut self,
        rng: &mut SimRng,
        budget: u64,
        observer: &mut dyn SimObserver,
    ) -> u64 {
        let start = self.interactions();
        if self.is_silent() {
            return 0;
        }
        let stride = observer.max_stride().unwrap_or(u64::MAX).max(1);
        let mut last_interactions = start;
        let mut last_effective = self.effective_interactions();
        loop {
            let done = self.interactions() - start;
            if done >= budget {
                return done;
            }
            let (advanced, changed) = self.advance_changed(rng, stride.min(budget - done));
            if advanced == 0 {
                return self.interactions() - start;
            }
            if changed {
                let interactions = self.interactions();
                let effective = self.effective_interactions();
                let keep_going = observer.observe(&Observation {
                    counts: self.counts(),
                    interactions,
                    effective,
                    delta_interactions: interactions - last_interactions,
                    delta_effective: effective - last_effective,
                });
                last_interactions = interactions;
                last_effective = effective;
                if !keep_going || self.is_silent() {
                    return interactions - start;
                }
            }
        }
    }
}
