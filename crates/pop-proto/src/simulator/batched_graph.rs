//! Batch-leaping exact simulator for graph-restricted schedulers.
//!
//! # The matching-based multi-event idea
//!
//! Under [`GraphScheduler`](crate::scheduler::GraphScheduler) the scheduled
//! sequence of (edge, orientation) draws is **i.i.d. uniform regardless of
//! the configuration** — only the *transitions* depend on states. So, as in
//! the clique engine ([`BatchSimulator`](crate::simulator::BatchSimulator)),
//! whole blocks of the schedule can be sampled up front: as long as no
//! scheduled edge touches a vertex already changed by an earlier *effective*
//! interaction of the block, every interaction's participants still hold
//! their block-start states, so the block's effective edges form a
//! **matching** (pairwise vertex-disjoint active edges) whose transitions
//! all commute and can be applied from block-start states. A draw that
//! touches a changed vertex is instead simulated literally from the
//! then-current states — the rejection-on-shared-endpoints fallback that
//! keeps the law exactly the scheduler's.
//!
//! The engine exploits this by processing the schedule in pre-generated
//! blocks of ~√n draws (the birthday scale, at which the rejections are
//! still rare):
//!
//! 1. one tight loop draws the raw schedule (pure RNG; a single
//!    [`SimRng::below`] yields both the edge index and, in its low bit, the
//!    orientation) and gathers the oriented endpoints from the edge list,
//!    and a second loop gathers their states — independent loads the CPU
//!    overlaps, the memory-level parallelism a draw-at-a-time engine
//!    cannot express (its next address depends on the previous load);
//! 2. a scan applies the block in schedule order against a **dirty
//!    bitmap** (vertex hashed to one bit, cleared at block end in
//!    O(changed vertices) time) that tracks every vertex changed since the
//!    gather: draws with no dirty endpoint use their gathered block-start
//!    states — provably current — while dirty (or hash-colliding) draws
//!    re-read current states and are simulated literally, marking whatever
//!    they change.
//!
//! The bitmap has **no false negatives** (a changed vertex's bit is always
//! set), so clean-classified draws are genuinely clean and the law is
//! exact; hash false positives merely demote a clean draw to the literal
//! fallback, which costs one re-read and nothing else. No-op draws never
//! dirty their endpoints — a no-op leaves its participants' states
//! untouched, so only *effective* interactions bound the matching.
//!
//! # Phases
//!
//! The block engine is the *effective-dominated* workhorse (USD bulk phase
//! on expanders: 30–55 % of draws effective). When activity collapses —
//! endgames, low-conductance frontiers — almost every scanned draw is a
//! no-op and scanning stops paying; a run of
//! [`SPARSE_TRIGGER_NOOPS`](super::sparse) consecutive no-op draws
//! escalates to the shared block-leaping sparse engine
//! ([`SparseSkipper`](super::sparse)) that [`GraphSimulator`] uses too:
//! exact geometric skips over no-op runs, effective events drawn from the
//! exact weighted law, and Fenwick updates deferred into per-block batched
//! passes. This engine drives the skipper a **block of effective events at
//! a time** (up to [`SPARSE_BLOCK_EVENTS`](super::sparse) per advancement,
//! the sparse twin of its dense block leaping), and the same hysteresis
//! band hands control back to the dense block engine when the activity
//! fraction recovers. Both phases simulate the same chain; the switch is
//! purely a cost-model decision.
//!
//! # Exactness
//!
//! Every scanned draw is a literal scheduled interaction: clean draws use
//! block-start states that provably equal current states, dirty draws use
//! re-read current states, and the sparse phase inherits the shared
//! skipper's exact geometric/conditional machinery (the deferred Fenwick
//! updates change *when* the tree materializes the weights, never the
//! weights sampling sees). The induced chain on agent states is identical
//! to [`GraphSimulator`]'s — verified by KS equivalence on the complete
//! graph, a random 8-regular graph, the cycle, and the torus in
//! `tests/topology_equivalence.rs`, and by the matching property tests
//! below.
//!
//! One clock convention is inherited from the graphwise engine: silence
//! stops the clock. A chunk whose last effective interaction silences the
//! configuration discards its trailing (provably no-op) draws from the
//! clock, so stabilization times report the interaction *at which silence
//! was reached*, exactly as the per-event engines do.
//!
//! # State packing
//!
//! The per-agent state array — the scan's hottest random-access target —
//! is stored through the [`StateWord`] packing parameter: one byte for
//! protocols with ≤ 256 states (the default, cache-resident for any
//! population the per-agent engines can hold), or the
//! [`WideBatchGraphSimulator`] u16 fallback for alphabets up to 65 536
//! states at twice the footprint. [`make_topology_simulator`] routes on
//! `k` automatically, so large-alphabet protocols batch instead of being
//! rejected.
//!
//! [`make_topology_simulator`]: ../../usd_core/backend/fn.make_topology_simulator.html

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::config::CountConfig;
use crate::graph::Graph;
use crate::protocol::Protocol;
use crate::simulator::sparse::{
    orient_event, SparseSkipper, SparseStep, SPARSE_BLOCK_EVENTS, SPARSE_TRIGGER_NOOPS,
};
use crate::simulator::{shuffled_layout, snapshot_tags, Simulator};
use crate::telemetry::timeline::EventHistograms;
use crate::telemetry::EngineTelemetry;
use sim_stats::rng::SimRng;

/// Packed storage width for the batch-graph engine's per-agent state array.
///
/// The scan gathers endpoint states by random access, so the array's cache
/// footprint is the engine's hottest constant: `u8` (the default) keeps it
/// to one byte per agent for protocols with at most 256 states, and `u16`
/// (see [`WideBatchGraphSimulator`]) lifts the alphabet cap to 65 536
/// states at twice the footprint.
pub trait StateWord: Copy + Eq + std::fmt::Debug + Send + Sync + 'static {
    /// Largest protocol alphabet this width can index.
    const LIMIT: usize;

    /// Pack a dense state index (caller guarantees `s < Self::LIMIT`).
    fn pack(s: usize) -> Self;

    /// Unpack back to the dense state index.
    fn unpack(self) -> usize;
}

impl StateWord for u8 {
    const LIMIT: usize = 256;

    #[inline(always)]
    fn pack(s: usize) -> Self {
        s as u8
    }

    #[inline(always)]
    fn unpack(self) -> usize {
        self as usize
    }
}

impl StateWord for u16 {
    const LIMIT: usize = 65_536;

    #[inline(always)]
    fn pack(s: usize) -> Self {
        s as u16
    }

    #[inline(always)]
    fn unpack(self) -> usize {
        self as usize
    }
}

/// Bounds on the pre-generated chunk length. The target is the birthday
/// scale √n (blocks rarely survive much longer), clamped so tiny graphs
/// still amortize the pass overhead and huge ones bound buffer memory and
/// stop-predicate latency.
const CHUNK_MIN: usize = 64;
const CHUNK_MAX: usize = 4096;

/// The u16 state-packing fallback of [`BatchGraphSimulator`] for protocols
/// with more than 256 (and up to 65 536) states — same engine, twice the
/// state-array footprint. Construct via
/// [`BatchGraphSimulator::with_states`] /
/// [`BatchGraphSimulator::with_config_shuffled`] through this alias.
pub type WideBatchGraphSimulator<P> = BatchGraphSimulator<P, u16>;

/// Batch-leaping simulator for graph-restricted schedulers.
///
/// Memory is O(n + m) plus O(√n) scan buffers; the block phase costs O(1)
/// per scheduled interaction with the per-draw constant driven down by
/// batched RNG and overlapped gathers, and the sparse phase costs the
/// shared skipper's amortized O(d log m) per **effective** interaction.
/// See the module docs for the block machinery and its exactness argument.
///
/// Observation granularity
/// ([`advance_observed`](crate::Simulator::advance_observed)):
/// **checkpoint** in both phases — one observation summarizes every
/// effective event of a ~√n-draw block (dense phase) or of an up-to-64-
/// event sparse block (`SPARSE_BLOCK_EVENTS` in the private `sparse`
/// module). Use the `graph` engine when exact per-event observation
/// matters.
#[derive(Debug, Clone)]
pub struct BatchGraphSimulator<P: Protocol, S: StateWord = u8> {
    protocol: P,
    /// The graph's edge list (unordered endpoint pairs).
    edges: Vec<(u32, u32)>,
    /// CSR adjacency offsets: vertex `v` owns `adj[offsets[v]..offsets[v+1]]`.
    offsets: Vec<u32>,
    /// CSR adjacency entries: `(neighbor, edge index)`.
    adj: Vec<(u32, u32)>,
    /// Packed dense state index per agent (see [`StateWord`]).
    states: Vec<S>,
    /// Per-state counts, kept in sync with `states`.
    counts: Vec<u64>,
    /// Shared sparse-phase engine (`SparseSkipper`); live only in the
    /// sparse phase.
    sparse: Option<SparseSkipper>,
    /// Consecutive no-op draws (sparse trigger, shared with graphwise).
    noop_run: u32,
    k: usize,
    interactions: u64,
    effective_interactions: u64,
    /// Cached `transition_indices` for all ordered state pairs
    /// (`table[i * k + j]`).
    table: Vec<(S, S)>,
    /// Whether `(i, j)` is a no-op (`noop[i * k + j]`).
    noop: Vec<bool>,
    /// Chunk length for this population (≈ √n, clamped).
    chunk: usize,
    /// Reusable buffer: raw oriented draws of the current chunk.
    draws: Vec<u64>,
    /// Dirty bitmap over hashed vertices (64 bits per word); `bit_mask` is
    /// the power-of-two bit-count minus one. A bit is set for every vertex
    /// changed since the current chunk's state gather and cleared at chunk
    /// end from `dirty_list`, so the map stays O(chunk)-sparse and
    /// cache-resident.
    bitmap: Vec<u64>,
    bit_mask: usize,
    /// Vertices marked dirty in the current chunk (bitmap clearing).
    dirty_list: Vec<u32>,
    /// Reusable buffer: gathered oriented endpoints of the current chunk.
    ends: Vec<(u32, u32)>,
    /// Reusable buffer: gathered endpoint states of the current chunk.
    pair_states: Vec<(S, S)>,
    /// Oriented endpoints of the current block's matching (bitmap clearing,
    /// diagnostics, and property tests; see
    /// [`BatchGraphSimulator::last_block_matching`]).
    block_events: Vec<(u32, u32)>,
    /// Engine telemetry: live counters here are `scheduled`/`effective`
    /// (mirroring the interaction clocks, *including* the silence rewind),
    /// `blocks`/`block_draws`/`block_applied`, `fallback_literal` (dirty
    /// draws applied literally), `pair_draws`, `sparse_enters`/
    /// `sparse_exits`, the harvested skipper stats, and the spans — with
    /// the batch-specific convention `dense ⊇ gather + apply` (gather =
    /// passes 1–3, apply = the matching scan, dense = the whole chunk, so
    /// `dense − gather − apply` is the scan's bookkeeping overhead).
    telemetry: EngineTelemetry,
    /// Per-event histograms (opt-in): dense no-op runs, matching block
    /// sizes, and per-chunk fallback runs recorded here; sparse fields
    /// merged in from each skipper at phase exits and boundary reads.
    hist: Option<Box<EventHistograms>>,
}

impl<P: Protocol, S: StateWord> BatchGraphSimulator<P, S> {
    /// Create from explicit per-agent states (dense indices) with this
    /// packing width. The graph must have at least one edge and as many
    /// vertices as there are states, and the protocol's alphabet must fit
    /// the width (`k ≤ S::LIMIT`; use [`WideBatchGraphSimulator`] past
    /// 256 states).
    pub fn with_states(protocol: P, graph: &Graph, states: Vec<usize>) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "agent count does not match graph vertex count"
        );
        assert!(graph.num_edges() > 0, "batch-graph engine needs edges");
        let k = protocol.num_states();
        assert!(
            k <= S::LIMIT,
            "protocol alphabet k = {k} exceeds this packing width's limit {}",
            S::LIMIT
        );
        let mut table = Vec::with_capacity(k * k);
        let mut noop = Vec::with_capacity(k * k);
        for i in 0..k {
            for j in 0..k {
                let (a, b) = protocol.transition_indices(i, j);
                table.push((S::pack(a), S::pack(b)));
                noop.push((a, b) == (i, j));
            }
        }
        let mut counts = vec![0u64; k];
        let states: Vec<S> = states
            .into_iter()
            .map(|s| {
                assert!(s < k, "state index {s} out of range");
                counts[s] += 1;
                S::pack(s)
            })
            .collect();
        let (offsets, adj) = graph.csr_adjacency();
        let chunk = ((graph.n() as f64).sqrt() as usize).clamp(CHUNK_MIN, CHUNK_MAX);
        // ~64 bitmap bits per possible dirty vertex of a chunk keeps the
        // hash false-positive rate (which only shortens blocks) below ~3%
        // even for a fully effective chunk, at ≤ 32 KiB of cache footprint.
        let bits = (chunk * 64).next_power_of_two();
        BatchGraphSimulator {
            protocol,
            edges: graph.edges().to_vec(),
            offsets,
            adj,
            states,
            counts,
            sparse: None,
            noop_run: 0,
            k,
            interactions: 0,
            effective_interactions: 0,
            table,
            noop,
            chunk,
            bitmap: vec![0u64; bits / 64],
            bit_mask: bits - 1,
            dirty_list: Vec::new(),
            draws: Vec::with_capacity(chunk),
            ends: Vec::with_capacity(chunk),
            pair_states: Vec::with_capacity(chunk),
            block_events: Vec::new(),
            telemetry: EngineTelemetry::new(),
            hist: None,
        }
    }

    /// Create from a count configuration with a uniformly shuffled agent
    /// layout — the canonical initial law on non-clique topologies (see
    /// [`GraphSimulator::from_config_shuffled`](super::GraphSimulator::from_config_shuffled)).
    pub fn with_config_shuffled(
        protocol: P,
        graph: &Graph,
        config: &CountConfig,
        rng: &mut SimRng,
    ) -> Self {
        let states = shuffled_layout(config, rng);
        Self::with_states(protocol, graph, states)
    }

    /// The protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of agents.
    pub fn population(&self) -> usize {
        self.states.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The state index of one agent.
    pub fn state_of_agent(&self, v: usize) -> usize {
        self.states[v].unpack()
    }

    /// Per-state counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Current count configuration (copies counts).
    pub fn config(&self) -> CountConfig {
        CountConfig::from_counts(self.counts.clone())
    }

    /// Total interactions simulated (including no-ops).
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Interactions that changed the configuration.
    pub fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    /// Parallel time elapsed (= interactions / n).
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.states.len() as f64
    }

    /// Oriented `(initiator, responder)` endpoint pairs of the most recent
    /// block's effective interactions. By construction these form a
    /// matching of active edges: pairwise vertex-disjoint, each active at
    /// block start — the invariant the property tests assert.
    pub fn last_block_matching(&self) -> &[(u32, u32)] {
        &self.block_events
    }

    /// Total number of active orientations `W` (0 iff silent). O(1) in the
    /// sparse phase; scans the edges in the block phase, where `W` is not
    /// maintained.
    pub fn active_weight(&self) -> u64 {
        match &self.sparse {
            Some(s) => s.total(),
            None => (0..self.edges.len()).map(|e| self.edge_weight(e)).sum(),
        }
    }

    /// Whether the configuration is silent *for this graph* (`W = 0`).
    /// Sparse phase: exact. Block phase: the sufficient count-level
    /// criterion, with frozen disconnected configurations caught by the
    /// no-op-run escalation exactly as in
    /// [`GraphSimulator::is_silent`](super::GraphSimulator::is_silent).
    pub fn is_silent(&self) -> bool {
        match &self.sparse {
            Some(s) => s.total() == 0,
            None => self.protocol.is_silent(&self.counts),
        }
    }

    /// Current weight (active orientations) of edge `e` from its endpoint
    /// states.
    #[inline]
    fn edge_weight(&self, e: usize) -> u64 {
        let (a, b) = self.edges[e];
        let sa = self.states[a as usize].unpack();
        let sb = self.states[b as usize].unpack();
        (!self.noop[sa * self.k + sb]) as u64 + (!self.noop[sb * self.k + sa]) as u64
    }

    /// Verify the sparse skipper (if live) against per-edge weights
    /// recomputed from the states — the deferred-update invariants the
    /// property tests pin. O(m); `Ok` when the block phase is active.
    #[doc(hidden)]
    pub fn validate_sparse_invariants(&self) -> Result<(), String> {
        match &self.sparse {
            None => Ok(()),
            Some(s) => {
                let truth: Vec<u64> = (0..self.edges.len()).map(|e| self.edge_weight(e)).collect();
                s.check_consistent(&truth)
            }
        }
    }

    /// End the current chunk: clear its dirty bits (O(changed vertices),
    /// no memset).
    fn clear_chunk(&mut self) {
        for idx in 0..self.dirty_list.len() {
            let h = self.dirty_list[idx] as usize & self.bit_mask;
            self.bitmap[h >> 6] &= !(1 << (h & 63));
        }
        self.dirty_list.clear();
    }

    /// Re-weight the incident edges of vertex `v` in the sparse skipper
    /// after its state changed from `old` (the state array already holds
    /// the new value). Unchanged edges are filtered with pure
    /// transition-table math before the skipper is touched; the tree
    /// update for changed ones is deferred and coalesced. Sparse phase
    /// only.
    fn refresh_incident(&mut self, v: usize, old: usize) {
        let t = self.states[v].unpack();
        let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
        let sparse = self
            .sparse
            .as_mut()
            .expect("sparse-phase refresh without a skipper");
        for idx in lo..hi {
            let (nb, e) = self.adj[idx];
            debug_assert_ne!(nb as usize, v, "self-loop");
            let y = self.states[nb as usize].unpack();
            let was = (!self.noop[old * self.k + y]) as u64 + (!self.noop[y * self.k + old]) as u64;
            let now = (!self.noop[t * self.k + y]) as u64 + (!self.noop[y * self.k + t]) as u64;
            if was != now {
                sparse.set_weight(e as usize, now);
            }
        }
    }

    /// Apply `f` to the oriented pair `(i → j)` from **current** states;
    /// returns whether any state changed (reporting new incident weights
    /// to the skipper when it is live). Used by the literal single step,
    /// the dirty-endpoint fallback, and the sparse phase — not by the
    /// block scan, which inlines the clean-draw fast path.
    fn apply_oriented(&mut self, i: usize, j: usize) -> bool {
        let (si, sj) = (self.states[i].unpack(), self.states[j].unpack());
        if self.noop[si * self.k + sj] {
            return false;
        }
        let (ti, tj) = self.table[si * self.k + sj];
        self.counts[si] -= 1;
        self.counts[sj] -= 1;
        self.counts[ti.unpack()] += 1;
        self.counts[tj.unpack()] += 1;
        self.effective_interactions += 1;
        self.telemetry.effective += 1;
        if self.sparse.is_none() {
            self.states[i] = ti;
            self.states[j] = tj;
            return true;
        }
        // One endpoint at a time so each new weight is computed against a
        // consistent snapshot (same argument as the graphwise engine).
        if ti.unpack() != si {
            self.states[i] = ti;
            self.refresh_incident(i, si);
        }
        if tj.unpack() != sj {
            self.states[j] = tj;
            self.refresh_incident(j, sj);
        }
        true
    }

    /// Enter the sparse phase: scan the graph once and hand the per-edge
    /// active-orientation weights to a fresh [`SparseSkipper`].
    fn enter_sparse(&mut self) {
        let weights: Vec<u64> = (0..self.edges.len()).map(|e| self.edge_weight(e)).collect();
        let mut skipper = SparseSkipper::new(&weights);
        skipper.set_histograms(self.hist.is_some());
        self.sparse = Some(skipper);
        self.noop_run = 0;
        self.telemetry.sparse_enters += 1;
    }

    /// Drop the sparse skipper (activity recovered), harvesting its
    /// telemetry first so no counters are lost with the phase.
    fn exit_sparse(&mut self) {
        if let Some(mut s) = self.sparse.take() {
            self.telemetry.sparse.absorb(s.take_stats());
            if let (Some(h), Some(sh)) = (&mut self.hist, s.histograms()) {
                h.merge(sh);
            }
            self.telemetry.sparse_exits += 1;
        }
        self.noop_run = 0;
    }

    /// Simulate exactly one scheduled interaction (uniform edge, uniform
    /// orientation — the literal scheduler law); returns whether it changed
    /// the configuration.
    pub fn step(&mut self, rng: &mut SimRng) -> bool {
        self.interactions += 1;
        self.telemetry.scheduled += 1;
        self.telemetry.dense_steps += 1;
        self.telemetry.pair_draws += 1;
        let v = rng.below(2 * self.edges.len() as u64);
        let (a, b) = self.edges[(v >> 1) as usize];
        let (i, j) = if v & 1 == 0 {
            (a as usize, b as usize)
        } else {
            (b as usize, a as usize)
        };
        self.apply_oriented(i, j)
    }

    /// Sparse-phase advancement, block-leaping: apply up to
    /// [`SPARSE_BLOCK_EVENTS`] effective events (each preceded by its
    /// exact geometric no-op skip) before returning, charging the
    /// interaction clock once for the whole block. Stops early at the
    /// horizon, at silence (the clock stops *at* the silencing event — the
    /// per-event engines' convention, with no trailing skips drawn), or
    /// when activity recovers past the hysteresis threshold. Returns
    /// (interactions advanced, whether the counts changed). Precondition:
    /// skipper live, `W > 0`, `max > 0`.
    fn sparse_block(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        let mut advanced = 0u64;
        let mut events = 0u64;
        while events < SPARSE_BLOCK_EVENTS && advanced < max {
            let sparse = self.sparse.as_mut().expect("sparse block without skipper");
            if sparse.total() == 0 || sparse.should_exit_to_dense() {
                break;
            }
            let e = match sparse.next_event(rng, max - advanced) {
                SparseStep::Horizon => {
                    advanced = max;
                    break;
                }
                SparseStep::Event { consumed, edge } => {
                    advanced += consumed;
                    edge
                }
            };
            let (a, b) = self.edges[e];
            let sa = self.states[a as usize].unpack();
            let sb = self.states[b as usize].unpack();
            let (i, j) = orient_event(
                rng,
                a as usize,
                b as usize,
                !self.noop[sa * self.k + sb],
                !self.noop[sb * self.k + sa],
            );
            let changed = self.apply_oriented(i, j);
            debug_assert!(changed, "sampled active orientation was a no-op");
            events += 1;
            self.sparse
                .as_mut()
                .expect("sparse block without skipper")
                .end_event();
        }
        self.interactions += advanced;
        self.telemetry.scheduled += advanced;
        (advanced, events > 0)
    }

    /// Scan one pre-generated chunk of at most `max` scheduled draws.
    /// Returns `(advanced, changed, trigger)` where `trigger` reports that
    /// the consecutive-no-op escalation fired (the caller builds the
    /// sparse skipper).
    fn chunk_scan(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool, bool) {
        debug_assert!(max > 0);
        debug_assert!(self.sparse.is_none(), "chunk scan with a live skipper");
        let m2 = 2 * self.edges.len() as u64;
        let k = self.k;
        let want = (self.chunk as u64).min(max) as usize;
        self.telemetry.blocks += 1;
        self.telemetry.block_draws += want as u64;
        self.telemetry.pair_draws += want as u64;
        let t_chunk = self.telemetry.clock.start();
        let t_gather = self.telemetry.clock.start();
        // The buffers move out of `self` for the passes so the tight loops
        // borrow disjoint data (no `&mut self` aliasing, no re-loads).
        let mut draws = std::mem::take(&mut self.draws);
        let mut ends = std::mem::take(&mut self.ends);
        let mut pair_states = std::mem::take(&mut self.pair_states);
        // Pass 1: raw scheduled draws — pure RNG, no memory traffic. One
        // below() per interaction carries the orientation in its low bit.
        draws.clear();
        for _ in 0..want {
            draws.push(rng.below(m2));
        }
        // Pass 2: the oriented-endpoint gather — independent loads the CPU
        // overlaps. The orientation select is branchless (a 50/50 branch
        // here would mispredict every other draw).
        ends.clear();
        for &v in &draws {
            let (a, b) = self.edges[(v >> 1) as usize];
            let swap = 0u32.wrapping_sub((v & 1) as u32) & (a ^ b);
            ends.push((a ^ swap, b ^ swap));
        }
        // Pass 3: gather block-start endpoint states (independent loads).
        pair_states.clear();
        for &(a, b) in &ends {
            pair_states.push((self.states[a as usize], self.states[b as usize]));
        }
        self.telemetry.spans.gather_ns += self.telemetry.clock.elapsed_ns(t_gather);
        let t_apply = self.telemetry.clock.start();
        // Pass 4: the matching scan, in schedule order. Everything the
        // loop touches is a local or a disjoint field borrow — per-draw
        // `&mut self` method calls would force the compiler to reload
        // fields on every iteration.
        let mut states = std::mem::take(&mut self.states);
        let mut bitmap = std::mem::take(&mut self.bitmap);
        let mut dirty_list = std::mem::take(&mut self.dirty_list);
        let mut block_events = std::mem::take(&mut self.block_events);
        let mut hist = std::mem::take(&mut self.hist);
        block_events.clear();
        let bit_mask = self.bit_mask;
        let noop = &self.noop;
        let table = &self.table;
        let counts = &mut self.counts;
        let mut effective = 0u64;
        let mut noop_run = self.noop_run;
        let mut advanced = 0u64;
        let mut changed = false;
        // Clock value (within this scan) of the last effective interaction,
        // for the silence rewind below.
        let mut last_change = 0u64;
        let mut trigger = false;
        let mut fallback = 0u64;
        for idx in 0..want {
            let (iv, jv) = ends[idx];
            advanced += 1;
            let ha = iv as usize & bit_mask;
            let hb = jv as usize & bit_mask;
            let was_dirty =
                ((bitmap[ha >> 6] >> (ha & 63)) | (bitmap[hb >> 6] >> (hb & 63))) & 1 == 1;
            let (si, sj) = if was_dirty {
                // A dirty (or hash-colliding) endpoint: gathered states may
                // be stale. All earlier interactions are already applied,
                // so simulate this draw literally from re-read current
                // states — the exact fallback.
                (states[iv as usize], states[jv as usize])
            } else {
                // Clean draw: the gathered chunk-start states are current.
                pair_states[idx]
            };
            let cell = si.unpack() * k + sj.unpack();
            if noop[cell] {
                noop_run += 1;
                if noop_run >= SPARSE_TRIGGER_NOOPS {
                    trigger = true;
                    break;
                }
                continue;
            }
            // Apply the transition and mark both endpoints dirty, so later
            // draws of the chunk reject their stale gathered states.
            let (ti, tj) = table[cell];
            states[iv as usize] = ti;
            states[jv as usize] = tj;
            counts[si.unpack()] -= 1;
            counts[sj.unpack()] -= 1;
            counts[ti.unpack()] += 1;
            counts[tj.unpack()] += 1;
            effective += 1;
            bitmap[ha >> 6] |= 1 << (ha & 63);
            bitmap[hb >> 6] |= 1 << (hb & 63);
            dirty_list.push(iv);
            dirty_list.push(jv);
            if let Some(h) = hist.as_deref_mut() {
                // The literally-counted no-op run before this effective
                // draw — the quantity the sparse phase samples
                // geometrically.
                h.skip_len.add_u64(noop_run as u64);
            }
            noop_run = 0;
            changed = true;
            last_change = advanced;
            if !was_dirty {
                // Only clean applications belong to the block's matching —
                // a fallback draw may legitimately reuse a matched vertex.
                block_events.push((iv, jv));
            } else {
                fallback += 1;
            }
        }
        self.telemetry.block_applied += block_events.len() as u64;
        self.telemetry.fallback_literal += fallback;
        if let Some(h) = hist.as_deref_mut() {
            h.block_size.add_u64(block_events.len() as u64);
            h.fallback_run.add_u64(fallback);
        }
        self.hist = hist;
        self.telemetry.spans.apply_ns += self.telemetry.clock.elapsed_ns(t_apply);
        self.states = states;
        self.bitmap = bitmap;
        self.dirty_list = dirty_list;
        self.block_events = block_events;
        self.noop_run = noop_run;
        self.effective_interactions += effective;
        self.telemetry.effective += effective;
        self.draws = draws;
        self.ends = ends;
        self.pair_states = pair_states;
        self.clear_chunk();
        self.interactions += advanced;
        self.telemetry.scheduled += advanced;
        // Silence rewind: if the chunk's last effective interaction
        // silenced the configuration, its trailing draws are provably
        // no-ops that postdate silence; drop them from the clock so the
        // stabilization convention (clock stops at silence) matches the
        // per-event engines exactly. The telemetry mirror follows the
        // rewind too — `scheduled` stays identical to `interactions()`.
        if changed && advanced > last_change && self.is_silent() {
            self.interactions -= advanced - last_change;
            self.telemetry.scheduled -= advanced - last_change;
            advanced = last_change;
        }
        self.telemetry.spans.dense_ns += self.telemetry.clock.elapsed_ns(t_chunk);
        (advanced, changed, trigger)
    }

    /// Advance by at most `max` interactions using the cheapest exact
    /// mechanism for the current activity level (block leaping or the
    /// shared sparse skipper, itself block-leaping). Returns interactions
    /// advanced and whether the counts changed. Once silence is
    /// *certified* (sparse phase, `W = 0`) the clock stops: further calls
    /// return `(0, false)`. In the block phase a silent-but-uncertified
    /// configuration still draws genuine scheduled no-ops until the
    /// no-op-run trigger escalates and certifies it (the same behaviour as
    /// the graphwise dense phase), so the first call on such a
    /// configuration can advance the clock by up to
    /// ~`SPARSE_TRIGGER_NOOPS` interactions — drivers check `is_silent()`
    /// before advancing, which both `run_until` and the stabilization
    /// entry points do.
    pub fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        let out = self.advance_changed_impl(rng, max);
        // Harvest the skipper's telemetry at every advancement boundary so
        // the engine's totals are current even while the sparse phase is
        // live (runs routinely *end* inside it).
        if let Some(s) = &mut self.sparse {
            self.telemetry.sparse.absorb(s.take_stats());
        }
        out
    }

    fn advance_changed_impl(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        if max == 0 {
            return (0, false);
        }
        let mut advanced = 0u64;
        let mut changed = false;
        loop {
            if let Some(s) = &self.sparse {
                if s.total() == 0 {
                    // Silent: stop the clock (see the graphwise engine).
                    return (advanced, changed);
                }
                if s.should_exit_to_dense() {
                    // Activity recovered: hand back to the block engine.
                    self.exit_sparse();
                } else {
                    let t0 = self.telemetry.clock.start();
                    let (leapt, ch) = self.sparse_block(rng, max - advanced);
                    self.telemetry.spans.sparse_ns += self.telemetry.clock.elapsed_ns(t0);
                    return (advanced + leapt, changed || ch);
                }
            }
            let (leapt, ch, trigger) = self.chunk_scan(rng, max - advanced);
            advanced += leapt;
            changed |= ch;
            if trigger {
                // Collapsed activity certified by the no-op run: escalate
                // to the sparse skipper. If the blocks already changed the
                // counts, return so drivers re-evaluate their predicates
                // first.
                self.enter_sparse();
                if changed || advanced >= max {
                    return (advanced, changed);
                }
            } else if ch || advanced >= max {
                return (advanced, changed);
            }
            // All-no-op block without a trigger yet: keep scanning so the
            // escalation (or the horizon) is reached within this call.
        }
    }
}

impl<P: Protocol> BatchGraphSimulator<P> {
    /// Create from explicit per-agent states (dense indices) with the
    /// default one-byte packing. The graph must have at least one edge and
    /// as many vertices as there are states; protocols with more than 256
    /// states construct through the [`WideBatchGraphSimulator`] alias
    /// instead (`make_topology_simulator` routes on `k` automatically).
    pub fn new(protocol: P, graph: &Graph, states: Vec<usize>) -> Self {
        Self::with_states(protocol, graph, states)
    }

    /// Create from a count configuration with a uniformly shuffled agent
    /// layout (one-byte packing) — the canonical initial law on non-clique
    /// topologies.
    pub fn from_config_shuffled(
        protocol: P,
        graph: &Graph,
        config: &CountConfig,
        rng: &mut SimRng,
    ) -> Self {
        Self::with_config_shuffled(protocol, graph, config, rng)
    }

    /// Create from a count configuration with a block layout. Only
    /// appropriate when the layout is irrelevant (the complete graph);
    /// prefer [`BatchGraphSimulator::from_config_shuffled`] otherwise.
    pub fn from_config(protocol: P, graph: &Graph, config: &CountConfig) -> Self {
        let mut states = Vec::with_capacity(config.n() as usize);
        for (idx, &c) in config.counts().iter().enumerate() {
            states.extend(std::iter::repeat_n(idx, c as usize));
        }
        Self::with_states(protocol, graph, states)
    }
}

impl<P: Protocol, S: StateWord> Simulator for BatchGraphSimulator<P, S> {
    fn population(&self) -> u64 {
        self.states.len() as u64
    }

    fn num_states(&self) -> usize {
        self.k
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    fn step(&mut self, rng: &mut SimRng) -> bool {
        BatchGraphSimulator::step(self, rng)
    }

    fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        BatchGraphSimulator::advance_changed(self, rng, max)
    }

    fn is_silent(&self) -> bool {
        BatchGraphSimulator::is_silent(self)
    }

    fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    fn set_span_timing(&mut self, enabled: bool) {
        self.telemetry.clock.enabled = enabled;
    }

    fn set_histograms(&mut self, enabled: bool) {
        self.hist = if enabled {
            Some(Box::new(EventHistograms::new()))
        } else {
            None
        };
        if let Some(s) = &mut self.sparse {
            s.set_histograms(enabled);
        }
    }

    fn histograms(&self) -> Option<EventHistograms> {
        let mut h = self.hist.as_deref()?.clone();
        if let Some(sh) = self.sparse.as_ref().and_then(|s| s.histograms()) {
            h.merge(sh);
        }
        Some(h)
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) -> Result<(), CheckpointError> {
        // Graph structure, transition tables, and the chunk/bitmap scratch
        // are constructor-derived (the scratch buffers are empty between
        // advancements — chunk_scan always clears them); the mutable state
        // is the packed agent states, clocks, no-op run, and the skipper.
        let tag = if S::LIMIT <= 256 {
            snapshot_tags::BATCH_GRAPH
        } else {
            snapshot_tags::WIDE_BATCH_GRAPH
        };
        w.put_u8(tag);
        snapshot_tags::write_config(w, self.states.len() as u64, self.k);
        w.put_u64(self.states.len() as u64);
        for &s in &self.states {
            w.put_u32(s.unpack() as u32);
        }
        w.put_u64(self.interactions);
        w.put_u64(self.effective_interactions);
        w.put_u32(self.noop_run);
        self.telemetry.write_snapshot(w);
        match &self.hist {
            Some(h) => {
                w.put_bool(true);
                h.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        match &self.sparse {
            Some(s) => {
                w.put_bool(true);
                s.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        let tag = if S::LIMIT <= 256 {
            snapshot_tags::BATCH_GRAPH
        } else {
            snapshot_tags::WIDE_BATCH_GRAPH
        };
        snapshot_tags::expect(r, tag, snapshot_tags::name(tag))?;
        snapshot_tags::expect_config(r, self.states.len() as u64, self.k)?;
        let count = r.get_u64()? as usize;
        if count != self.states.len() {
            return Err(CheckpointError::Corrupt(format!(
                "batchgraph snapshot has {count} agents (engine has {})",
                self.states.len()
            )));
        }
        let mut states = Vec::with_capacity(count);
        let mut counts = vec![0u64; self.k];
        for _ in 0..count {
            let s = r.get_u32()? as usize;
            if s >= self.k {
                return Err(CheckpointError::Corrupt(format!(
                    "agent state index {s} out of range ({} states)",
                    self.k
                )));
            }
            counts[s] += 1;
            states.push(S::pack(s));
        }
        let interactions = r.get_u64()?;
        let effective_interactions = r.get_u64()?;
        let noop_run = r.get_u32()?;
        let telemetry = EngineTelemetry::read_snapshot(r)?;
        let hist = if r.get_bool()? {
            Some(Box::new(EventHistograms::read_snapshot(r)?))
        } else {
            None
        };
        self.states = states;
        self.counts = counts;
        let sparse = if r.get_bool()? {
            let truth: Vec<u64> = (0..self.edges.len()).map(|e| self.edge_weight(e)).collect();
            Some(SparseSkipper::read_snapshot(&truth, r)?)
        } else {
            None
        };
        self.interactions = interactions;
        self.effective_interactions = effective_interactions;
        self.noop_run = noop_run;
        self.telemetry = telemetry;
        self.hist = hist;
        self.sparse = sparse;
        self.block_events.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OneWayEpidemic;

    fn epidemic_on(graph: &Graph, infected: usize) -> BatchGraphSimulator<OneWayEpidemic> {
        let mut states = vec![1usize; graph.n()];
        for s in states.iter_mut().take(infected) {
            *s = 0;
        }
        BatchGraphSimulator::new(OneWayEpidemic, graph, states)
    }

    #[test]
    fn epidemic_on_cycle_completes_and_counts_events() {
        let g = Graph::cycle(50);
        let mut sim = epidemic_on(&g, 1);
        let mut rng = SimRng::new(1);
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
        }
        assert_eq!(sim.counts(), &[50, 0]);
        assert_eq!(sim.effective_interactions(), 49);
        assert_eq!(sim.active_weight(), 0);
    }

    #[test]
    fn block_clock_matches_single_step_clock_in_distribution() {
        // Block leaping must preserve the total-interaction law: compare
        // mean completion interactions via advance() and via step().
        let reps = 300u64;
        let mut block_mean = 0.0;
        let mut step_mean = 0.0;
        for seed in 0..reps {
            let g = Graph::cycle(24);
            let mut sim = epidemic_on(&g, 1);
            let mut rng = SimRng::new(seed);
            while !sim.is_silent() {
                sim.advance_changed(&mut rng, u64::MAX / 2);
            }
            block_mean += sim.interactions() as f64;

            let g = Graph::cycle(24);
            let mut sim = epidemic_on(&g, 1);
            let mut rng = SimRng::new(seed + 777_777);
            while !sim.is_silent() {
                sim.step(&mut rng);
            }
            step_mean += sim.interactions() as f64;
        }
        block_mean /= reps as f64;
        step_mean /= reps as f64;
        let rel = (block_mean - step_mean).abs() / step_mean;
        assert!(rel < 0.06, "block {block_mean} vs step {step_mean}");
    }

    #[test]
    fn matches_graphwise_engine_in_distribution() {
        // Same chain as GraphSimulator: compare mean completion clocks on
        // a sparse graph.
        let reps = 250u64;
        let g = Graph::grid(6, 6);
        let mut batch_mean = 0.0;
        let mut graph_mean = 0.0;
        for seed in 0..reps {
            let mut sim = epidemic_on(&g, 2);
            let mut rng = SimRng::new(seed);
            while !sim.is_silent() {
                sim.advance_changed(&mut rng, u64::MAX / 2);
            }
            batch_mean += sim.interactions() as f64;

            let mut states = vec![1usize; 36];
            states[0] = 0;
            states[1] = 0;
            let mut reference = crate::simulator::GraphSimulator::new(OneWayEpidemic, &g, states);
            let mut rng = SimRng::new(seed + 555_555);
            while !reference.is_silent() {
                reference.advance_changed(&mut rng, u64::MAX / 2);
            }
            graph_mean += reference.interactions() as f64;
        }
        batch_mean /= reps as f64;
        graph_mean /= reps as f64;
        let rel = (batch_mean - graph_mean).abs() / graph_mean;
        assert!(rel < 0.06, "batch {batch_mean} vs graphwise {graph_mean}");
    }

    #[test]
    fn blocks_are_matchings_of_active_edges() {
        // The structural invariant behind the leap: every recorded block
        // is a set of vertex-disjoint edges, each active at block start.
        let g = crate::topology::TopologyFamily::Regular { d: 8 }.build(4_096, 3);
        let mut states = vec![1usize; 4_096];
        for s in states.iter_mut().take(2_048) {
            *s = 0;
        }
        let mut sim = BatchGraphSimulator::new(OneWayEpidemic, &g, states);
        let mut rng = SimRng::new(9);
        let mut blocks_seen = 0u64;
        while !sim.is_silent() && blocks_seen < 400 {
            sim.advance_changed(&mut rng, u64::MAX / 2);
            let block = sim.last_block_matching();
            if block.is_empty() {
                continue;
            }
            blocks_seen += 1;
            let mut seen = std::collections::HashSet::new();
            for &(a, b) in block {
                assert!(seen.insert(a), "vertex {a} appears twice in a block");
                assert!(seen.insert(b), "vertex {b} appears twice in a block");
            }
        }
        assert!(blocks_seen > 50, "only {blocks_seen} nonempty blocks");
    }

    #[test]
    fn advance_respects_max_and_truncates_exactly() {
        let g = Graph::cycle(1000);
        let mut sim = epidemic_on(&g, 1);
        let mut rng = SimRng::new(3);
        for max in [1u64, 7, 100, 10_000] {
            let before = sim.interactions();
            let (advanced, _) = sim.advance_changed(&mut rng, max);
            assert!(advanced >= 1 && advanced <= max, "advanced {advanced}");
            assert_eq!(sim.interactions() - before, advanced);
        }
    }

    #[test]
    fn silent_configuration_stops_the_clock() {
        let g = Graph::cycle(10);
        let mut sim = epidemic_on(&g, 10); // everyone infected: silent
        assert!(sim.is_silent());
        let mut rng = SimRng::new(4);
        let (first, changed) = sim.advance_changed(&mut rng, 5_000);
        assert!(!changed);
        assert!(first <= 5_000);
        let clock = sim.interactions();
        let (second, changed) = sim.advance_changed(&mut rng, 5_000);
        assert_eq!((second, changed), (0, false));
        assert_eq!(sim.interactions(), clock);
        assert_eq!(sim.effective_interactions(), 0);
    }

    #[test]
    fn disconnected_graph_freezes_with_mixed_counts() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let mut states = vec![1usize; 4];
        states[0] = 0;
        let mut sim = BatchGraphSimulator::new(OneWayEpidemic, &g, states);
        let mut rng = SimRng::new(5);
        let mut guard = 0;
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
            guard += 1;
            assert!(guard < 100);
        }
        assert_eq!(sim.counts(), &[2, 2]);
    }

    #[test]
    fn population_and_counts_conserved_across_blocks() {
        let g = crate::topology::TopologyFamily::Regular { d: 4 }.build(1_024, 1);
        let mut sim = epidemic_on(&g, 16);
        let mut rng = SimRng::new(6);
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
            assert_eq!(sim.counts().iter().sum::<u64>(), 1_024);
            let mut recount = vec![0u64; 2];
            for v in 0..1_024 {
                recount[sim.state_of_agent(v)] += 1;
            }
            assert_eq!(recount, sim.counts(), "states out of sync with counts");
        }
        assert_eq!(sim.effective_interactions(), 1_024 - 16);
    }

    #[test]
    fn bitmap_is_fully_cleared_between_advancements() {
        // After any advancement the dirty map must be empty — a leaked bit
        // would silently shorten every later block.
        let g = crate::topology::TopologyFamily::Regular { d: 8 }.build(2_048, 2);
        let mut states = vec![0usize; 2_048];
        for s in states.iter_mut().take(1_024) {
            *s = 1;
        }
        let mut sim = BatchGraphSimulator::new(OneWayEpidemic, &g, states);
        let mut rng = SimRng::new(8);
        for _ in 0..50 {
            if sim.is_silent() {
                break;
            }
            sim.advance_changed(&mut rng, 10_000);
            assert!(
                sim.bitmap.iter().all(|&w| w == 0),
                "dirty bits leaked across blocks"
            );
        }
    }

    #[test]
    fn sparse_phase_invariants_hold_across_advancements() {
        // Drive a no-op-dominated instance (an epidemic frontier creeping
        // around a large cycle: W ≤ 4 of 2m orientations) so the run lives
        // in the sparse skipper, and verify the deferred-update invariants
        // after every advancement.
        let g = Graph::cycle(2_048);
        let mut sim = epidemic_on(&g, 1);
        let mut rng = SimRng::new(11);
        let mut sparse_advancements = 0u32;
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
            sim.validate_sparse_invariants().unwrap();
            if sim.sparse.is_some() {
                sparse_advancements += 1;
            }
        }
        // The sparse phase leaps ~64 events per advancement, so a
        // 2047-event epidemic crosses it tens of times.
        assert!(
            sparse_advancements > 10,
            "only {sparse_advancements} sparse advancements exercised"
        );
    }

    /// A k-state one-way "maximum spreads" protocol for exercising wide
    /// alphabets: the responder adopts the larger of the two values.
    /// Consensus on the global maximum is the unique silent outcome on a
    /// connected graph.
    #[derive(Debug, Clone, Copy)]
    struct MaxConsensus {
        k: usize,
    }

    impl crate::protocol::Protocol for MaxConsensus {
        type State = usize;
        type Output = usize;

        fn num_states(&self) -> usize {
            self.k
        }

        fn index_of(&self, state: usize) -> usize {
            state
        }

        fn state_of(&self, index: usize) -> usize {
            assert!(index < self.k);
            index
        }

        fn transition(&self, a: usize, b: usize) -> (usize, usize) {
            (a.max(b), a.max(b))
        }

        fn output(&self, state: usize) -> usize {
            state
        }
    }

    #[test]
    fn wide_engine_runs_k_300_to_consensus() {
        // The u16 fallback lifts the one-byte alphabet cap: k = 300 states
        // on a torus, stabilizing to consensus on the maximum.
        let proto = MaxConsensus { k: 300 };
        let g = crate::topology::TopologyFamily::Torus.build(256, 2);
        let states: Vec<usize> = (0..256).map(|v| (v * 7) % 300).collect();
        let expect_max = states.iter().copied().max().unwrap();
        let mut sim: WideBatchGraphSimulator<MaxConsensus> =
            WideBatchGraphSimulator::with_states(proto, &g, states);
        let mut rng = SimRng::new(21);
        let mut guard = 0u32;
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
            sim.validate_sparse_invariants().unwrap();
            guard += 1;
            assert!(guard < 100_000, "k = 300 run did not stabilize");
        }
        assert_eq!(sim.counts()[expect_max], 256, "consensus on the maximum");
        assert_eq!(sim.counts().iter().sum::<u64>(), 256);
    }

    #[test]
    fn wide_and_narrow_engines_agree_in_distribution() {
        // For a small alphabet the two packings must be the same engine:
        // identical seeds give identical trajectories.
        let g = Graph::cycle(64);
        let mut states = vec![1usize; 64];
        states[0] = 0;
        let mut narrow = BatchGraphSimulator::new(OneWayEpidemic, &g, states.clone());
        let mut wide: WideBatchGraphSimulator<OneWayEpidemic> =
            WideBatchGraphSimulator::with_states(OneWayEpidemic, &g, states);
        let mut rng_a = SimRng::new(31);
        let mut rng_b = SimRng::new(31);
        while !narrow.is_silent() {
            narrow.advance_changed(&mut rng_a, u64::MAX / 2);
        }
        while !wide.is_silent() {
            wide.advance_changed(&mut rng_b, u64::MAX / 2);
        }
        assert_eq!(narrow.interactions(), wide.interactions());
        assert_eq!(
            narrow.effective_interactions(),
            wide.effective_interactions()
        );
        assert_eq!(narrow.counts(), wide.counts());
    }

    #[test]
    fn telemetry_mirrors_clocks_across_phases_and_the_silence_rewind() {
        // A cycle epidemic crosses dense blocks, the silence rewind, and a
        // long sparse phase; the telemetry mirrors must track the clocks
        // exactly through all of it — including the rewind, which
        // *subtracts* trailing post-silence draws from both.
        let g = Graph::cycle(2_048);
        let mut sim = epidemic_on(&g, 1);
        let mut rng = SimRng::new(41);
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
        }
        let t = Simulator::telemetry(&sim);
        assert_eq!(t.scheduled, sim.interactions());
        assert_eq!(t.effective, sim.effective_interactions());
        assert!(t.blocks >= 1, "no dense blocks scanned");
        assert!(t.block_draws >= t.blocks, "blocks without draws");
        assert!(t.sparse_enters >= 1, "never escalated to sparse");
        assert!(t.sparse.events > 0, "skipper stats were not harvested");
        // Every effective interaction is a clean block application, a
        // dirty literal fallback, or a sparse-phase event.
        assert_eq!(
            t.block_applied + t.fallback_literal + t.sparse.events,
            t.effective
        );
        // Span timing is off by default: no clock reads, zero spans.
        assert_eq!(t.spans, crate::telemetry::SpanSet::new());
    }

    #[test]
    fn telemetry_block_accounting_matches_on_an_effective_dominated_run() {
        // An expander bulk phase is where the matching engine lives: most
        // applications must be clean (block matching), with the literal
        // fallback a small minority, and the identity with `effective`
        // must hold exactly.
        let g = crate::topology::TopologyFamily::Regular { d: 8 }.build(4_096, 7);
        let mut states = vec![1usize; 4_096];
        for s in states.iter_mut().take(2_048) {
            *s = 0;
        }
        let mut sim = BatchGraphSimulator::new(OneWayEpidemic, &g, states);
        let mut rng = SimRng::new(43);
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
        }
        let t = Simulator::telemetry(&sim);
        assert_eq!(t.scheduled, sim.interactions());
        assert_eq!(t.effective, sim.effective_interactions());
        assert_eq!(
            t.block_applied + t.fallback_literal + t.sparse.events,
            t.effective
        );
        assert!(t.block_applied > 0, "no clean matching applications");
        assert!(
            t.block_applied > t.fallback_literal,
            "matching rejected more than it applied: {} clean vs {} fallback",
            t.block_applied,
            t.fallback_literal
        );
        assert_eq!(t.pair_draws, t.block_draws, "all draws come from blocks");
    }

    #[test]
    fn trait_object_usable() {
        let g = Graph::cycle(100);
        let mut sim: Box<dyn Simulator> = Box::new(epidemic_on(&g, 5));
        let mut rng = SimRng::new(7);
        let ran = sim.run_until(&mut rng, u64::MAX / 2, &mut |_| false);
        assert!(ran > 0);
        assert!(sim.is_silent());
        assert_eq!(sim.counts(), &[100, 0]);
    }

    #[test]
    #[should_panic(expected = "needs edges")]
    fn empty_graph_rejected() {
        let g = Graph::from_edges(3, vec![]);
        BatchGraphSimulator::new(OneWayEpidemic, &g, vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "vertex count")]
    fn state_count_mismatch_rejected() {
        let g = Graph::cycle(3);
        BatchGraphSimulator::new(OneWayEpidemic, &g, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds this packing width's limit")]
    fn narrow_engine_rejects_oversized_alphabets() {
        let g = Graph::cycle(4);
        BatchGraphSimulator::<MaxConsensus, u8>::with_states(
            MaxConsensus { k: 300 },
            &g,
            vec![0, 1, 2, 3],
        );
    }
}
