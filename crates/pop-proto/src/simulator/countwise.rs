//! Count-based exact simulator.

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::config::CountConfig;
use crate::protocol::Protocol;
use crate::sampling::FenwickSampler;
use crate::simulator::snapshot_tags;
use crate::telemetry::timeline::EventHistograms;
use crate::telemetry::EngineTelemetry;
use sim_stats::rng::SimRng;

/// Count-based exact simulator for the uniform clique scheduler.
///
/// Agents are anonymous, so under the uniform scheduler the pair of
/// *states* selected for interaction is distributed as: first state drawn
/// with probability `count/n`, second state drawn from the remaining `n−1`
/// agents. Sampling state pairs directly therefore induces exactly the same
/// Markov chain on count configurations as per-agent simulation — this is
/// verified against [`AgentSimulator`](crate::simulator::AgentSimulator) in
/// the cross-crate property tests.
///
/// Memory is O(|Σ|) and each interaction costs O(log |Σ|) via a Fenwick
/// sampler, which is what makes the paper's n = 10⁶ runs cheap.
///
/// Observation granularity
/// ([`advance_observed`](crate::Simulator::advance_observed)): **exact** —
/// every advancement is one scheduled interaction, so observers see every
/// effective event individually.
#[derive(Debug, Clone)]
pub struct CountSimulator<P: Protocol> {
    protocol: P,
    sampler: FenwickSampler,
    n: u64,
    interactions: u64,
    effective_interactions: u64,
    /// Engine telemetry. A per-event engine: the live counters are
    /// `scheduled`/`effective` (mirroring the clocks), `dense_steps`, and
    /// `pair_draws` — one per scheduled state-pair draw. No phases, no
    /// spans.
    telemetry: EngineTelemetry,
    /// Per-event histograms (opt-in): the literally-counted no-op run
    /// before each effective interaction lands in `skip_len`.
    hist: Option<Box<EventHistograms>>,
    /// Consecutive no-op interactions (histogram recording only).
    noop_run: u64,
}

impl<P: Protocol> CountSimulator<P> {
    /// Create from a count configuration. Requires n ≥ 2.
    pub fn new(protocol: P, config: &CountConfig) -> Self {
        assert_eq!(
            config.num_states(),
            protocol.num_states(),
            "configuration does not match protocol state count"
        );
        assert!(config.n() >= 2, "need at least 2 agents");
        CountSimulator {
            protocol,
            sampler: FenwickSampler::new(config.counts()),
            n: config.n(),
            interactions: 0,
            effective_interactions: 0,
            telemetry: EngineTelemetry::new(),
            hist: None,
            noop_run: 0,
        }
    }

    /// The protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Per-state counts.
    pub fn counts(&self) -> &[u64] {
        self.sampler.weights()
    }

    /// Current count configuration (copies counts).
    pub fn config(&self) -> CountConfig {
        CountConfig::from_counts(self.counts().to_vec())
    }

    /// Total interactions simulated.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Interactions that changed the configuration.
    pub fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    /// Parallel time elapsed (= interactions / n).
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.n as f64
    }

    /// Run one interaction; returns `true` if it changed the configuration.
    pub fn step(&mut self, rng: &mut SimRng) -> bool {
        self.interactions += 1;
        self.telemetry.scheduled += 1;
        self.telemetry.dense_steps += 1;
        self.telemetry.pair_draws += 1;
        let (si, sj) = self.sampler.sample_distinct_pair(rng);
        let (ti, tj) = self.protocol.transition_indices(si, sj);
        if (ti, tj) == (si, sj) {
            if self.hist.is_some() {
                self.noop_run += 1;
            }
            return false;
        }
        self.sampler.add(si, -1);
        self.sampler.add(sj, -1);
        self.sampler.add(ti, 1);
        self.sampler.add(tj, 1);
        self.effective_interactions += 1;
        self.telemetry.effective += 1;
        if let Some(h) = &mut self.hist {
            // The completed no-op run before this effective event — the
            // quantity the leaping engines sample geometrically.
            h.skip_len.add_u64(self.noop_run);
            self.noop_run = 0;
        }
        true
    }

    /// Run `budget` interactions or until `stop` returns true (checked after
    /// every interaction). Returns the number of interactions run.
    pub fn run(
        &mut self,
        rng: &mut SimRng,
        budget: u64,
        mut stop: impl FnMut(&Self) -> bool,
    ) -> u64 {
        let start = self.interactions;
        while self.interactions - start < budget {
            self.step(rng);
            if stop(self) {
                break;
            }
        }
        self.interactions - start
    }

    /// Whether the configuration is silent.
    pub fn is_silent(&self) -> bool {
        self.protocol.is_silent(self.counts())
    }
}

impl<P: Protocol> crate::simulator::Simulator for CountSimulator<P> {
    fn population(&self) -> u64 {
        self.n
    }

    fn num_states(&self) -> usize {
        self.sampler.len()
    }

    fn counts(&self) -> &[u64] {
        CountSimulator::counts(self)
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    fn step(&mut self, rng: &mut SimRng) -> bool {
        CountSimulator::step(self, rng)
    }

    fn is_silent(&self) -> bool {
        CountSimulator::is_silent(self)
    }

    fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    fn set_histograms(&mut self, enabled: bool) {
        self.hist = if enabled {
            Some(Box::new(EventHistograms::new()))
        } else {
            None
        };
        self.noop_run = 0;
    }

    fn histograms(&self) -> Option<EventHistograms> {
        self.hist.as_deref().cloned()
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) -> Result<(), CheckpointError> {
        w.put_u8(snapshot_tags::COUNT);
        w.put_u64(self.n);
        w.put_u32(self.sampler.len() as u32);
        w.put_u64_slice(self.counts());
        w.put_u64(self.interactions);
        w.put_u64(self.effective_interactions);
        self.telemetry.write_snapshot(w);
        match &self.hist {
            Some(h) => {
                w.put_bool(true);
                h.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.noop_run);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        snapshot_tags::expect(r, snapshot_tags::COUNT, "count")?;
        snapshot_tags::expect_config(r, self.n, self.sampler.len())?;
        let counts = r.get_u64_vec()?;
        if counts.len() != self.sampler.len() {
            return Err(CheckpointError::Corrupt(format!(
                "count snapshot has {} states (engine has {})",
                counts.len(),
                self.sampler.len()
            )));
        }
        if counts.iter().sum::<u64>() != self.n {
            return Err(CheckpointError::Corrupt(
                "count snapshot does not sum to the population".into(),
            ));
        }
        let interactions = r.get_u64()?;
        let effective_interactions = r.get_u64()?;
        let telemetry = EngineTelemetry::read_snapshot(r)?;
        let hist = if r.get_bool()? {
            Some(Box::new(EventHistograms::read_snapshot(r)?))
        } else {
            None
        };
        let noop_run = r.get_u64()?;
        self.sampler = FenwickSampler::new(&counts);
        self.interactions = interactions;
        self.effective_interactions = effective_interactions;
        self.telemetry = telemetry;
        self.hist = hist;
        self.noop_run = noop_run;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OneWayEpidemic;

    fn epidemic(n: u64, infected: u64) -> CountSimulator<OneWayEpidemic> {
        CountSimulator::new(
            OneWayEpidemic,
            &CountConfig::from_counts(vec![infected, n - infected]),
        )
    }

    #[test]
    fn population_conserved_over_many_steps() {
        let mut sim = epidemic(100, 10);
        let mut rng = SimRng::new(6);
        for _ in 0..10_000 {
            sim.step(&mut rng);
            assert_eq!(sim.counts().iter().sum::<u64>(), 100);
        }
    }

    #[test]
    fn epidemic_reaches_silence() {
        let mut sim = epidemic(200, 1);
        let mut rng = SimRng::new(7);
        sim.run(&mut rng, 10_000_000, |s| s.is_silent());
        assert_eq!(sim.counts(), &[200, 0]);
    }

    #[test]
    fn epidemic_completion_time_is_theta_n_log_n() {
        // Coupon-collector style: completion in ~n ln n / 2 * 2 interactions;
        // just sanity-check the order of magnitude across seeds.
        let n = 500u64;
        let mut total = 0u64;
        for seed in 0..10 {
            let mut sim = epidemic(n, 1);
            let mut rng = SimRng::new(seed);
            sim.run(&mut rng, 100_000_000, |s| s.counts()[1] == 0);
            total += sim.interactions();
        }
        let mean = total as f64 / 10.0;
        let nf = n as f64;
        let theory = nf * nf.ln(); // Θ reference point
        assert!(
            mean > theory * 0.3 && mean < theory * 3.0,
            "mean {mean} vs theory {theory}"
        );
    }

    #[test]
    fn effective_interactions_bounded_by_changes() {
        let mut sim = epidemic(50, 25);
        let mut rng = SimRng::new(8);
        for _ in 0..5_000 {
            sim.step(&mut rng);
        }
        assert_eq!(sim.effective_interactions(), 25);
    }

    #[test]
    fn stop_predicate_halts_run() {
        let mut sim = epidemic(100, 1);
        let mut rng = SimRng::new(9);
        sim.run(&mut rng, u64::MAX, |s| s.counts()[0] >= 50);
        assert!(sim.counts()[0] >= 50);
        assert!(sim.counts()[0] < 100, "should stop well before completion");
    }

    #[test]
    #[should_panic(expected = "at least 2 agents")]
    fn tiny_population_rejected() {
        CountSimulator::new(OneWayEpidemic, &CountConfig::from_counts(vec![1, 0]));
    }

    #[test]
    #[should_panic(expected = "state count")]
    fn wrong_state_count_rejected() {
        CountSimulator::new(OneWayEpidemic, &CountConfig::from_counts(vec![1, 1, 1]));
    }
}
