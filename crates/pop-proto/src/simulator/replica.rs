//! Bit-parallel replica simulator: 64 independent runs per word.
//!
//! The scheduled (pair, orientation) draw sequence of the exact engines is
//! configuration-independent — which agents interact never depends on what
//! states they hold. [`ReplicaSimulator`] exploits this by running up to 64
//! independent *replicas* (lanes) of the same topology against **one shared
//! schedule**: per agent, bit `l` of each of `B = ⌈log₂|codes|⌉` plane
//! words holds bit `p` of lane `l`'s state code. Each scheduled interaction
//! draws the pair once, gathers two `B`-word columns, and applies the
//! protocol's transition to all live lanes simultaneously with a handful of
//! bitwise ops ([`BitwiseProtocol::apply_lanes`]) — the per-draw RNG and
//! gather cost, the documented irreducible floor of the scalar engines, is
//! paid once per 64 runs.
//!
//! # Lane retirement
//!
//! Lanes stabilize independently. After every effective draw the changed
//! lanes' count vectors are checked for silence; a silent lane is *retired*
//! — cleared from the `live` bitmap with its stabilization time (the shared
//! draw clock, which is exactly the scalar run's interaction clock)
//! recorded — and the transition mask excludes it from then on. On
//! disconnected graphs a lane can freeze without ever becoming
//! count-silent; a periodic non-mutating edge scan
//! ([`BitwiseProtocol::active_lanes`] per edge) retires those too. The scan
//! is skipped entirely when the graph is connected and the protocol's
//! no-op pairs are exactly the equal-state pairs
//! ([`BitwiseProtocol::noops_are_equal_pairs`]) — then graph silence,
//! uniformity, and count silence coincide and the per-lane count check is
//! already exact.
//!
//! # Clock and telemetry semantics (per-lane aggregate)
//!
//! One scheduled draw advances every live lane by one interaction, so the
//! [`Simulator`] clocks are **lane-aggregates**: `interactions()` grows by
//! `popcount(live)` per draw and `effective_interactions()` by the number
//! of changed lanes. `population()` is `lanes × n`, keeping
//! `parallel_time` the mean per-lane parallel time. Telemetry mirrors the
//! clocks (`scheduled`/`effective` aggregates) while `pair_draws` and
//! `dense_steps` count engine actions — one per shared draw. Per-lane
//! observation goes through [`Simulator::lanes`],
//! [`Simulator::lane_counts`], and [`Simulator::lane_stabilized_at`];
//! aggregate observation (the `observe` layer) sees lane-summed counts at
//! per-draw granularity. Budgets are aggregate interactions; because one
//! draw is atomic across lanes, a driver can overshoot its budget by at
//! most `lanes − 1` interactions.

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::graph::Graph;
use crate::protocol::{OneWayEpidemic, Protocol};
use crate::simulator::snapshot_tags;
use crate::telemetry::timeline::EventHistograms;
use crate::telemetry::EngineTelemetry;
use sim_stats::multinomial::distinct_pair;
use sim_stats::rng::SimRng;

/// Largest plane count the engine supports (state codes up to 2¹⁶ — far
/// beyond the u16 packing cap of the scalar engines).
pub const MAX_PLANES: usize = 16;

/// Hard lane cap: one bit per lane in a `u64`.
pub const MAX_LANES: u32 = 64;

/// State-count ceiling for the bit-parallel count bookkeeping in
/// [`ReplicaSimulator::draw_step`]: up to this many states, per-state
/// lane-equality masks (O(states × planes) bitwise ops per draw) beat the
/// per-changed-lane gather/decode loop; beyond it the engine falls back
/// to the scalar path, whose cost does not scale with the state count.
const MASK_STATES: usize = 16;

/// Field width of the packed per-lane counter fast path: one `u64` holds a
/// lane's (up to) three state counts in 21-bit fields, so a changed lane
/// costs one table-driven add plus a branchless per-field zero test instead
/// of per-state indexed memory updates.
const PACKED_FIELD_BITS: usize = 21;
const PACKED_FIELD_MASK: u64 = (1 << PACKED_FIELD_BITS) - 1;

/// The packed path needs all three fields in one word…
const PACKED_MAX_STATES: usize = 3;

/// …codes that index a 16-entry transition table (`old << 2 | new`)…
const PACKED_MAX_PLANES: usize = 2;

/// …and counts whose 21-bit fields keep the top bit free for the zero
/// test (`count + 2^20 − 1 < 2^21`), i.e. `n < 2^20` agents per lane.
const PACKED_MAX_N: usize = 1 << 20;

/// A [`Protocol`] that can apply its transition to 64 packed replicas at
/// once.
///
/// States are carried as **codes** (`encode`/`decode` need not be the
/// identity on dense indices — protocols pick the encoding that makes the
/// transition cheap, e.g. USD encodes ⊥ as 0 so "decided" is a plane-OR),
/// bit-sliced across [`BitwiseProtocol::planes`] `u64` words: bit `l` of
/// plane word `p` is bit `p` of lane `l`'s code.
pub trait BitwiseProtocol: Protocol {
    /// Number of bit planes `B` (with every code `< 2^B`; `B ≤`
    /// [`MAX_PLANES`]).
    fn planes(&self) -> usize;

    /// Encode a dense state index as a plane code.
    fn encode(&self, state: usize) -> u64;

    /// Decode a plane code back to the dense state index
    /// (`decode(encode(s)) == s`).
    fn decode(&self, code: u64) -> usize;

    /// Apply the transition to every lane in `live` at once: `a`/`b` are
    /// the two interacting agents' plane words (ordered initiator,
    /// responder), mutated in place; lanes outside `live` must be left
    /// untouched. Returns the mask of lanes whose configuration changed
    /// (a subset of `live`).
    fn apply_lanes(&self, a: &mut [u64], b: &mut [u64], live: u64) -> u64;

    /// Non-mutating twin of [`BitwiseProtocol::apply_lanes`]: the mask of
    /// lanes for which an interaction between these two agents would
    /// change something (in either orientation). Drives the frozen-lane
    /// edge scan.
    fn active_lanes(&self, a: &[u64], b: &[u64]) -> u64;

    /// Whether the protocol's no-op pairs are **exactly** the equal-state
    /// pairs. When true, graph silence on a connected graph is equivalent
    /// to a uniform (hence count-silent) configuration, and the engine
    /// skips the frozen-lane edge scan on connected graphs. Defaults to
    /// the conservative `false`.
    fn noops_are_equal_pairs(&self) -> bool {
        false
    }

    /// Whether a configuration can become count-silent **only** at an
    /// interaction where one of its state counts decrements to zero.
    /// When true, the engine checks [`Protocol::is_silent`] only for
    /// lanes where a count just emptied (rare) instead of for every
    /// changed lane (every effective draw) — the dominant bookkeeping
    /// saving on dense ensembles. Holds for USD (all-⊥ silence empties
    /// the last two opinion counts; winner silence empties ⊥) and the
    /// epidemic (completion empties the susceptible count). Defaults to
    /// the conservative `false`.
    fn silence_needs_zeroed_count(&self) -> bool {
        false
    }
}

impl BitwiseProtocol for OneWayEpidemic {
    fn planes(&self) -> usize {
        1
    }

    fn encode(&self, state: usize) -> u64 {
        state as u64 // 0 = infected, 1 = susceptible
    }

    fn decode(&self, code: u64) -> usize {
        code as usize
    }

    fn apply_lanes(&self, a: &mut [u64], b: &mut [u64], live: u64) -> u64 {
        // Infected is code 0, so AND merges the infection into both agents.
        let (ap, bp) = (a[0], b[0]);
        let changed = (ap ^ bp) & live;
        let merged = ap & bp;
        a[0] = (ap & !changed) | (merged & changed);
        b[0] = (bp & !changed) | (merged & changed);
        changed
    }

    fn active_lanes(&self, a: &[u64], b: &[u64]) -> u64 {
        a[0] ^ b[0]
    }

    fn noops_are_equal_pairs(&self) -> bool {
        true // no-ops are (I,I) and (S,S) only
    }

    fn silence_needs_zeroed_count(&self) -> bool {
        true // completion is exactly "susceptible count hit zero"
    }
}

/// Pack one lane's per-state counts into [`PACKED_FIELD_BITS`]-bit fields.
fn pack_lane(counts: &[u64]) -> u64 {
    counts
        .iter()
        .enumerate()
        .fold(0u64, |acc, (st, &c)| acc | c << (PACKED_FIELD_BITS * st))
}

/// Whether `graph` on `n` vertices is connected (union-find; `n ≤ 1` is
/// trivially connected).
fn is_connected(n: usize, edges: &[(u32, u32)]) -> bool {
    if n <= 1 {
        return true;
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut components = n;
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra as usize] = rb;
            components -= 1;
        }
    }
    components == 1
}

/// Bit-parallel replica engine: up to 64 independent replicas of one
/// topology advanced by a single shared schedule (see the module docs).
///
/// Clique replicas draw pairs exactly like
/// [`CliqueScheduler`](crate::scheduler::CliqueScheduler); graph replicas
/// draw (edge, orientation) exactly like
/// [`GraphScheduler`](crate::scheduler::GraphScheduler) — the streams are
/// interchangeable draw-for-draw with a scalar
/// [`AgentSimulator`](super::AgentSimulator) run, which is what makes
/// lane-level bit-identity testable.
///
/// Observation granularity
/// ([`advance_observed`](crate::Simulator::advance_observed)): per shared
/// draw — exact at lane-aggregate level, with per-lane state exposed
/// through the lane accessors rather than the observation stream.
#[derive(Debug, Clone)]
pub struct ReplicaSimulator<P: BitwiseProtocol> {
    protocol: P,
    /// `None` = clique (uniform distinct pairs), `Some` = graph-restricted.
    graph: Option<Graph>,
    /// Whether frozen-lane edge scans are required (graph mode, and only
    /// when connectivity + the protocol's no-op structure don't already
    /// make the per-lane count check exact).
    needs_scan: bool,
    /// Draw-clock cadence of the frozen-lane scan.
    scan_period: u64,
    next_scan: u64,
    n: usize,
    lanes: u32,
    planes: usize,
    /// Agent-major bit-sliced state: `words[agent * planes + p]` bit `l`
    /// is bit `p` of lane `l`'s code for `agent`.
    words: Vec<u64>,
    /// Lane-retirement bitmap: bit `l` set while lane `l` is running.
    live: u64,
    /// Per-lane per-state counts, lane-major (`lanes × num_states`).
    /// Empty when the packed fast path is on (`packed_counts` is then the
    /// canonical representation).
    lane_counts: Vec<u64>,
    /// Whether the packed per-lane counter fast path is active
    /// (`states ≤ 3`, `planes ≤ 2`, `n < 2^20` — USD `k = 2` and the
    /// epidemic land here).
    packed: bool,
    /// Packed per-lane counts: `packed_counts[l]` holds lane `l`'s state
    /// counts in [`PACKED_FIELD_BITS`]-bit fields, field `st` = dense
    /// state `st`'s count. All-zero when `packed` is off. Fixed-size so
    /// hot-loop indexing (`lane & 63`) provably never bounds-checks.
    packed_counts: Box<[u64; 64]>,
    /// Pair transition table:
    /// `packed_delta[oa << 6 | na << 4 | ob << 2 | nb]` is the packed
    /// count delta (`+1` in each new state's field, `−1` in each old's,
    /// two's-complement-wrapped) of the initiator moving `oa → na` and
    /// the responder `ob → nb` (plane codes). One load covers both
    /// endpoints; entries for invalid codes are unused.
    packed_delta: Box<[u64; 256]>,
    /// `1` in the low bit of every **active** state field.
    packed_lo: u64,
    /// `1` in the top bit of every active state field.
    packed_hi: u64,
    /// Lane-summed counts (the aggregate the [`Simulator`] trait reports).
    counts: Vec<u64>,
    /// Shared-draw clock at each lane's retirement; `u64::MAX` = running.
    stab_time: Vec<u64>,
    /// Shared scheduled draws (= every lane's private interaction clock).
    draws: u64,
    /// Lane-aggregate interaction clock (`+= popcount(live)` per draw).
    interactions: u64,
    /// Lane-aggregate effective clock (`+= popcount(changed)` per draw).
    effective: u64,
    telemetry: EngineTelemetry,
    hist: Option<Box<EventHistograms>>,
    /// Consecutive all-lane-no-op draws (histogram recording only).
    noop_run: u64,
}

impl<P: BitwiseProtocol> ReplicaSimulator<P> {
    /// Clique replicas: one layout (dense state indices, length `n`) per
    /// lane. Layouts of lanes sharing a schedule **must differ as
    /// permutations** or the lanes evolve identically; callers draw each
    /// from an independent shuffle.
    pub fn new_clique(protocol: P, n: usize, layouts: &[Vec<usize>]) -> Self {
        assert!(n >= 2, "need at least 2 agents");
        Self::new_inner(protocol, None, n, layouts)
    }

    /// Graph-restricted replicas: one layout per lane on `graph`'s
    /// vertices. The graph must have at least one edge (mirroring
    /// [`GraphScheduler`](crate::scheduler::GraphScheduler)).
    pub fn new_graph(protocol: P, graph: Graph, layouts: &[Vec<usize>]) -> Self {
        assert!(graph.num_edges() > 0, "graph scheduler needs edges");
        let n = graph.n();
        Self::new_inner(protocol, Some(graph), n, layouts)
    }

    fn new_inner(protocol: P, graph: Option<Graph>, n: usize, layouts: &[Vec<usize>]) -> Self {
        let lanes = layouts.len() as u32;
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "need 1..=64 replica lanes, got {lanes}"
        );
        let planes = protocol.planes();
        assert!(
            (1..=MAX_PLANES).contains(&planes),
            "protocol needs {planes} planes (supported: 1..={MAX_PLANES})"
        );
        let states = protocol.num_states();
        let mut words = vec![0u64; n * planes];
        let mut lane_counts = vec![0u64; lanes as usize * states];
        let mut counts = vec![0u64; states];
        for (lane, layout) in layouts.iter().enumerate() {
            assert_eq!(layout.len(), n, "lane {lane} layout has wrong length");
            for (agent, &st) in layout.iter().enumerate() {
                assert!(st < states, "state index {st} out of range");
                let code = protocol.encode(st);
                debug_assert!(code < (1u64 << planes) || planes == 64);
                for p in 0..planes {
                    words[agent * planes + p] |= ((code >> p) & 1) << lane;
                }
                lane_counts[lane * states + st] += 1;
                counts[st] += 1;
            }
        }
        let needs_scan = match &graph {
            None => false, // clique: connected, uniform pair scheduler
            Some(g) => !(protocol.noops_are_equal_pairs() && is_connected(n, g.edges())),
        };
        let scan_period = (4 * n as u64).max(1 << 16);
        // Lanes whose initial configuration is already silent retire at
        // draw 0 — they have nothing to run.
        let mut live = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        let mut stab_time = vec![u64::MAX; lanes as usize];
        for lane in 0..lanes as usize {
            if protocol.is_silent(&lane_counts[lane * states..(lane + 1) * states]) {
                live &= !(1u64 << lane);
                stab_time[lane] = 0;
            }
        }
        let packed = states <= PACKED_MAX_STATES && planes <= PACKED_MAX_PLANES && n < PACKED_MAX_N;
        let mut packed_delta = Box::new([0u64; 256]);
        let (mut packed_lo, mut packed_hi) = (0u64, 0u64);
        let mut packed_counts = Box::new([0u64; 64]);
        if packed {
            for st in 0..states {
                packed_lo |= 1u64 << (PACKED_FIELD_BITS * st);
                packed_hi |= 1u64 << (PACKED_FIELD_BITS * (st + 1) - 1);
            }
            let delta = |from: usize, to: usize| {
                (1u64 << (PACKED_FIELD_BITS * to)).wrapping_sub(1u64 << (PACKED_FIELD_BITS * from))
            };
            for fa in 0..states {
                for ta in 0..states {
                    for fb in 0..states {
                        for tb in 0..states {
                            let idx = (protocol.encode(fa) << 6
                                | protocol.encode(ta) << 4
                                | protocol.encode(fb) << 2
                                | protocol.encode(tb))
                                as usize;
                            packed_delta[idx] = delta(fa, ta).wrapping_add(delta(fb, tb));
                        }
                    }
                }
            }
            for (l, chunk) in lane_counts.chunks_exact(states).enumerate() {
                packed_counts[l] = pack_lane(chunk);
            }
            lane_counts = Vec::new();
        }
        ReplicaSimulator {
            protocol,
            graph,
            needs_scan,
            scan_period,
            next_scan: scan_period,
            n,
            lanes,
            planes,
            words,
            live,
            lane_counts,
            packed,
            packed_counts,
            packed_delta,
            packed_lo,
            packed_hi,
            counts,
            stab_time,
            draws: 0,
            interactions: 0,
            effective: 0,
            telemetry: EngineTelemetry::new(),
            hist: None,
            noop_run: 0,
        }
    }

    /// The protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of replica lanes.
    pub fn lane_count(&self) -> u32 {
        self.lanes
    }

    /// Agents per replica (`population()` is `lanes × n`).
    pub fn agents_per_lane(&self) -> usize {
        self.n
    }

    /// The lane-retirement bitmap: bit `l` set while lane `l` runs.
    pub fn live_mask(&self) -> u64 {
        self.live
    }

    /// Shared scheduled draws so far — every lane's private interaction
    /// clock (live or retired-at-that-time).
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Lane `l`'s per-state counts (dense state indexing).
    pub fn counts_of_lane(&self, lane: u32) -> Vec<u64> {
        let states = self.counts.len();
        let l = lane as usize;
        if self.packed {
            self.unpack_lane(l)[..states].to_vec()
        } else {
            self.lane_counts[l * states..(l + 1) * states].to_vec()
        }
    }

    /// Unpack lane `l`'s packed counts into a dense array (packed path
    /// only; fields beyond the active states are zero).
    #[inline]
    fn unpack_lane(&self, l: usize) -> [u64; PACKED_MAX_STATES] {
        let c = self.packed_counts[l];
        let mut out = [0u64; PACKED_MAX_STATES];
        for (st, o) in out.iter_mut().enumerate() {
            *o = (c >> (PACKED_FIELD_BITS * st)) & PACKED_FIELD_MASK;
        }
        out
    }

    /// The shared-draw clock at which lane `l` stabilized (count-silent or
    /// frozen-retired), or `None` while it runs. Comparable one-to-one
    /// with a scalar run's interaction clock.
    pub fn stabilized_at(&self, lane: u32) -> Option<u64> {
        let t = self.stab_time[lane as usize];
        (t != u64::MAX).then_some(t)
    }

    /// Decode lane `l`'s full per-agent state vector (dense indices).
    pub fn lane_states(&self, lane: u32) -> Vec<usize> {
        let s = self.planes;
        let l = lane as usize;
        (0..self.n)
            .map(|agent| {
                let mut code = 0u64;
                for p in 0..s {
                    code |= ((self.words[agent * s + p] >> l) & 1) << p;
                }
                self.protocol.decode(code)
            })
            .collect()
    }

    /// One scheduled pair from the shared stream — exactly
    /// `GraphScheduler::next_pair` on graphs (uniform edge, then a
    /// uniform orientation, consumed even for symmetric protocols —
    /// stream parity with the scalar engines), uniform distinct agents
    /// on the clique.
    #[inline]
    fn draw_pair(&self, rng: &mut SimRng) -> (usize, usize) {
        match &self.graph {
            None => {
                let (a, b) = distinct_pair(rng, self.n as u64);
                (a as usize, b as usize)
            }
            Some(g) => {
                let edges = g.edges();
                let (a, b) = edges[rng.index(edges.len())];
                if rng.bernoulli(0.5) {
                    (a as usize, b as usize)
                } else {
                    (b as usize, a as usize)
                }
            }
        }
    }

    /// One shared scheduled draw: advances every live lane by one
    /// interaction. Returns whether any lane changed.
    pub fn draw_step(&mut self, rng: &mut SimRng) -> bool {
        let (i, j) = self.draw_pair(rng);
        debug_assert_ne!(i, j);
        self.draws += 1;
        let live = self.live;
        let live_lanes = live.count_ones() as u64;
        self.interactions += live_lanes;
        self.telemetry.scheduled += live_lanes;
        self.telemetry.dense_steps += 1;
        self.telemetry.pair_draws += 1;
        // Lanes where a state count decremented to zero this draw — the
        // only lanes that can have newly become silent, for protocols
        // with `silence_needs_zeroed_count`.
        let mut zero_hit = 0u64;
        // Plane-count dispatch: the const-width paths keep both agents'
        // columns in registers, unroll every plane loop, and skip the
        // write-back on all-lane no-op draws (the common case).
        let changed = match self.planes {
            1 => self.apply_draw::<1>(i, j, live, &mut zero_hit),
            2 => self.apply_draw::<2>(i, j, live, &mut zero_hit),
            3 => self.apply_draw::<3>(i, j, live, &mut zero_hit),
            4 => self.apply_draw::<4>(i, j, live, &mut zero_hit),
            _ => self.apply_draw_wide(i, j, live, &mut zero_hit),
        };
        if changed != 0 {
            let ch = changed.count_ones() as u64;
            self.effective += ch;
            self.telemetry.effective += ch;
            if let Some(h) = &mut self.hist {
                h.skip_len.add_u64(self.noop_run);
            }
            self.noop_run = 0;
            // Only a changed lane can have newly become count-silent —
            // and for protocols where silence needs a freshly emptied
            // count, only a lane that zeroed a count this draw.
            let mut rest = if self.protocol.silence_needs_zeroed_count() {
                zero_hit & self.live
            } else {
                changed
            };
            let states = self.counts.len();
            while rest != 0 {
                let l = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let silent = if self.packed {
                    let buf = self.unpack_lane(l);
                    self.protocol.is_silent(&buf[..states])
                } else {
                    self.protocol
                        .is_silent(&self.lane_counts[l * states..(l + 1) * states])
                };
                if silent {
                    self.live &= !(1u64 << l);
                    self.stab_time[l] = self.draws;
                }
            }
        } else if self.hist.is_some() {
            self.noop_run += 1;
        }
        if self.needs_scan && self.draws >= self.next_scan {
            self.frozen_scan();
        }
        changed != 0
    }

    /// Const-width transition + bookkeeping for one drawn pair: gather
    /// both agents' `S` plane words into registers, apply the protocol to
    /// all live lanes, and — only when some lane changed — write back and
    /// maintain the count vectors with per-state lane-equality masks
    /// (`states ≤ 2^S ≤ 16`, so the mask path always applies). Returns
    /// the changed-lane mask and accumulates freshly emptied counts into
    /// `zero_hit`.
    #[inline(always)]
    fn apply_draw<const S: usize>(
        &mut self,
        i: usize,
        j: usize,
        live: u64,
        zero_hit: &mut u64,
    ) -> u64 {
        let (ia, ib) = (i * S, j * S);
        let mut wa = [0u64; S];
        let mut wb = [0u64; S];
        wa.copy_from_slice(&self.words[ia..ia + S]);
        wb.copy_from_slice(&self.words[ib..ib + S]);
        let (old_a, old_b) = (wa, wb);
        let changed = self.protocol.apply_lanes(&mut wa, &mut wb, live);
        debug_assert_eq!(changed & !live, 0, "changed lanes must be live");
        if changed == 0 {
            return 0;
        }
        self.words[ia..ia + S].copy_from_slice(&wa);
        self.words[ib..ib + S].copy_from_slice(&wb);
        if self.packed {
            self.apply_packed::<S>(&old_a, &wa, &old_b, &wb, changed, zero_hit);
            return changed;
        }
        let states = self.counts.len();
        debug_assert!(states <= MASK_STATES, "codes fit in S planes");
        // Bit-parallel bookkeeping: per endpoint, the lanes whose code
        // actually moved, then per state an equality mask over the
        // planes. Aggregate counts are popcount deltas; per-lane counts
        // touch exactly one from- and one to-state per moved endpoint,
        // so the scalar work left is ~4 indexed adds per changed lane
        // instead of a gather/decode per lane.
        let (mut a_diff, mut b_diff) = (0u64, 0u64);
        for p in 0..S {
            a_diff |= old_a[p] ^ wa[p];
            b_diff |= old_b[p] ^ wb[p];
        }
        for st in 0..states {
            let code = self.protocol.encode(st);
            let (mut oa, mut na) = (a_diff, a_diff);
            let (mut ob, mut nb) = (b_diff, b_diff);
            for p in 0..S {
                let sel = ((code >> p) & 1).wrapping_neg();
                oa &= !(old_a[p] ^ sel);
                na &= !(wa[p] ^ sel);
                ob &= !(old_b[p] ^ sel);
                nb &= !(wb[p] ^ sel);
            }
            let gained = (na.count_ones() + nb.count_ones()) as u64;
            let lost = (oa.count_ones() + ob.count_ones()) as u64;
            self.counts[st] += gained;
            self.counts[st] -= lost;
            // One pass over every lane whose `st`-count moved, with a
            // branchless body: the delta is read out of the four masks
            // (∈ -2..=2) and zero-crossings are flagged with a compare,
            // not a branch — twelve data-dependent loops collapsed into
            // one per state keeps the mispredict cost off the hot path.
            let mut m = na | nb | oa | ob;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                let inc = ((na >> l) & 1) + ((nb >> l) & 1);
                let dec = ((oa >> l) & 1) + ((ob >> l) & 1);
                let c = &mut self.lane_counts[l * states + st];
                *c = c.wrapping_add(inc).wrapping_sub(dec);
                *zero_hit |= u64::from(*c == 0) << l;
            }
        }
        changed
    }

    /// Packed-counter bookkeeping for one changed draw: one loop over the
    /// changed lanes, each costing two code gathers, two transition-table
    /// loads, one packed add, and a branchless per-field zero test —
    /// replacing both the per-state equality-mask pass and the per-state
    /// lane loops of the generic path. Aggregate count deltas fall out of
    /// the same loop via a bias-packed accumulator, so the whole
    /// bookkeeping is O(changed lanes), not O(states × lanes).
    ///
    /// Arithmetic safety: a lane's packed word always decomposes uniquely
    /// into its true counts because every field stays in `[0, n]` with
    /// `n < 2^20` (decrements only fire for a state the agent actually
    /// occupied, so no field underflows and no borrow crosses a field
    /// boundary in the *result*; intermediate wrapped representations are
    /// exact because `u64` addition is exact integer arithmetic mod 2^64).
    /// The accumulator adds a `+2` bias per field per lane so its fields
    /// are also non-negative (bounded by `4 × 64 < 2^21`).
    #[inline(always)]
    fn apply_packed<const S: usize>(
        &mut self,
        old_a: &[u64; S],
        new_a: &[u64; S],
        old_b: &[u64; S],
        new_b: &[u64; S],
        changed: u64,
        zero_hit: &mut u64,
    ) {
        let lo = self.packed_lo;
        let hi = self.packed_hi;
        let bias = lo << 1; // +2 in every active field
                            // Walk the changed-lane bits into an index buffer first: the body
                            // below then runs as a counted loop free of the serial
                            // `trailing_zeros` dependency chain.
        let mut idx = [0u8; 64];
        let mut cnt = 0usize;
        let mut m = changed;
        while m != 0 {
            idx[cnt] = m.trailing_zeros() as u8;
            cnt += 1;
            m &= m - 1;
        }
        let mut agg = 0u64;
        for &l in &idx[..cnt] {
            let l = l as usize & 63;
            // Gather both endpoints' old and new codes (four independent
            // short chains), then combine into the table index (layout
            // `oa:na:ob:nb`, 2 bits each) with a balanced tree so the
            // load's address is ready as early as possible.
            let (mut oa, mut na, mut ob, mut nb) = (0u64, 0u64, 0u64, 0u64);
            for p in 0..S {
                oa |= ((old_a[p] >> l) & 1) << p;
                na |= ((new_a[p] >> l) & 1) << p;
                ob |= ((old_b[p] >> l) & 1) << p;
                nb |= ((new_b[p] >> l) & 1) << p;
            }
            let t = ((oa << 2 | na) << 4) | (ob << 2 | nb);
            let d = self.packed_delta[t as usize];
            let c_old = self.packed_counts[l];
            let c_new = c_old.wrapping_add(d);
            self.packed_counts[l] = c_new;
            // Exact per-field zero flags: `(v | top) − 1` keeps the top
            // bit set iff `v ≥ 1` (no cross-field borrow since the top
            // bits are forced on), so a cleared top bit marks `v == 0`.
            let zf_old = !((c_old | hi).wrapping_sub(lo)) & hi;
            let zf_new = !((c_new | hi).wrapping_sub(lo)) & hi;
            *zero_hit |= u64::from(zf_new & !zf_old != 0) << l;
            agg = agg.wrapping_add(d).wrapping_add(bias);
        }
        for (st, c) in self.counts.iter_mut().enumerate() {
            let f = (agg >> (PACKED_FIELD_BITS * st)) & PACKED_FIELD_MASK;
            *c = c.wrapping_add(f).wrapping_sub(2 * cnt as u64);
        }
    }

    /// Slice-width twin of [`ReplicaSimulator::apply_draw`] for protocols
    /// with more than 4 planes, including the per-changed-lane
    /// gather/decode fallback for state counts past [`MASK_STATES`].
    fn apply_draw_wide(&mut self, i: usize, j: usize, live: u64, zero_hit: &mut u64) -> u64 {
        let s = self.planes;
        let (ia, ib) = (i * s, j * s);
        let (lo, hi) = (ia.min(ib), ia.max(ib));
        let (left, right) = self.words.split_at_mut(hi);
        let (wl, wr) = (&mut left[lo..lo + s], &mut right[..s]);
        let (wa, wb) = if ia < ib { (wl, wr) } else { (wr, wl) };
        let mut old_a = [0u64; MAX_PLANES];
        let mut old_b = [0u64; MAX_PLANES];
        old_a[..s].copy_from_slice(wa);
        old_b[..s].copy_from_slice(wb);
        let changed = self.protocol.apply_lanes(wa, wb, live);
        debug_assert_eq!(changed & !live, 0, "changed lanes must be live");
        if changed == 0 {
            return 0;
        }
        // Copy the updated columns into locals so the `words` borrow ends
        // before the counter bookkeeping below re-borrows `self`.
        let mut new_a = [0u64; MAX_PLANES];
        let mut new_b = [0u64; MAX_PLANES];
        new_a[..s].copy_from_slice(wa);
        new_b[..s].copy_from_slice(wb);
        let states = self.counts.len();
        if states <= MASK_STATES {
            let (mut a_diff, mut b_diff) = (0u64, 0u64);
            for p in 0..s {
                a_diff |= old_a[p] ^ new_a[p];
                b_diff |= old_b[p] ^ new_b[p];
            }
            for st in 0..states {
                let code = self.protocol.encode(st);
                let (mut oa, mut na) = (a_diff, a_diff);
                let (mut ob, mut nb) = (b_diff, b_diff);
                for p in 0..s {
                    let sel = ((code >> p) & 1).wrapping_neg();
                    oa &= !(old_a[p] ^ sel);
                    na &= !(new_a[p] ^ sel);
                    ob &= !(old_b[p] ^ sel);
                    nb &= !(new_b[p] ^ sel);
                }
                let gained = (na.count_ones() + nb.count_ones()) as u64;
                let lost = (oa.count_ones() + ob.count_ones()) as u64;
                self.counts[st] += gained;
                self.counts[st] -= lost;
                // Branchless single pass per state — see apply_draw.
                let mut m = na | nb | oa | ob;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let inc = ((na >> l) & 1) + ((nb >> l) & 1);
                    let dec = ((oa >> l) & 1) + ((ob >> l) & 1);
                    let c = &mut self.lane_counts[l * states + st];
                    *c = c.wrapping_add(inc).wrapping_sub(dec);
                    *zero_hit |= u64::from(*c == 0) << l;
                }
            }
        } else {
            // Wide-state fallback: decode each changed lane's old and new
            // codes and update the count vectors per lane.
            let mut rest = changed;
            while rest != 0 {
                let l = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let (mut oa, mut ob, mut na, mut nb) = (0u64, 0u64, 0u64, 0u64);
                for p in 0..s {
                    oa |= ((old_a[p] >> l) & 1) << p;
                    ob |= ((old_b[p] >> l) & 1) << p;
                    na |= ((new_a[p] >> l) & 1) << p;
                    nb |= ((new_b[p] >> l) & 1) << p;
                }
                let base = l * states;
                if oa != na {
                    let (from, to) = (self.protocol.decode(oa), self.protocol.decode(na));
                    self.lane_counts[base + from] -= 1;
                    self.lane_counts[base + to] += 1;
                    self.counts[from] -= 1;
                    self.counts[to] += 1;
                    if self.lane_counts[base + from] == 0 {
                        *zero_hit |= 1u64 << l;
                    }
                }
                if ob != nb {
                    let (from, to) = (self.protocol.decode(ob), self.protocol.decode(nb));
                    self.lane_counts[base + from] -= 1;
                    self.lane_counts[base + to] += 1;
                    self.counts[from] -= 1;
                    self.counts[to] += 1;
                    if self.lane_counts[base + from] == 0 {
                        *zero_hit |= 1u64 << l;
                    }
                }
            }
        }
        changed
    }

    /// Frozen-lane edge scan: retire every live lane for which **no** edge
    /// is active (graph-silent lanes that never became count-silent —
    /// stranded components on disconnected graphs). Non-mutating on the
    /// state planes; O(m · planes).
    fn frozen_scan(&mut self) {
        self.next_scan = self.draws + self.scan_period;
        if self.live == 0 {
            return;
        }
        let mut active = 0u64;
        if let Some(g) = &self.graph {
            let s = self.planes;
            for &(x, y) in g.edges() {
                let a = &self.words[x as usize * s..x as usize * s + s];
                let b = &self.words[y as usize * s..y as usize * s + s];
                active |= self.protocol.active_lanes(a, b);
                if self.live & !active == 0 {
                    return; // every live lane has an active edge
                }
            }
        }
        let mut frozen = self.live & !active;
        while frozen != 0 {
            let l = frozen.trailing_zeros() as usize;
            frozen &= frozen - 1;
            self.live &= !(1u64 << l);
            self.stab_time[l] = self.draws;
        }
    }
}

impl<P: BitwiseProtocol> crate::simulator::Simulator for ReplicaSimulator<P> {
    fn population(&self) -> u64 {
        self.lanes as u64 * self.n as u64
    }

    fn num_states(&self) -> usize {
        self.counts.len()
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn effective_interactions(&self) -> u64 {
        self.effective
    }

    fn step(&mut self, rng: &mut SimRng) -> bool {
        self.draw_step(rng)
    }

    fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        if max == 0 || self.live == 0 {
            return (0, false);
        }
        let before = self.interactions;
        let changed = self.draw_step(rng);
        (self.interactions - before, changed)
    }

    fn is_silent(&self) -> bool {
        self.live == 0
    }

    /// Monomorphic stabilization loop: `run_to_silence` has no observer to
    /// feed, so drive [`ReplicaSimulator::draw_step`] directly instead of
    /// going through the generic observation driver — on a boxed simulator
    /// that skips two dynamic dispatches per draw plus the per-changed-draw
    /// `Observation` plumbing, a measurable share of a ~150 ns draw.
    fn run_to_silence(&mut self, rng: &mut SimRng, budget: u64) -> (u64, bool) {
        let start = self.interactions;
        while self.live != 0 && self.interactions - start < budget {
            self.draw_step(rng);
        }
        (self.interactions, self.live == 0)
    }

    fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    fn set_histograms(&mut self, enabled: bool) {
        self.hist = enabled.then(|| Box::new(EventHistograms::new()));
        self.noop_run = 0;
    }

    fn histograms(&self) -> Option<EventHistograms> {
        self.hist.as_deref().cloned()
    }

    fn lanes(&self) -> u32 {
        self.lanes
    }

    fn lane_counts(&self, lane: u32) -> Vec<u64> {
        self.counts_of_lane(lane)
    }

    fn lane_stabilized_at(&self, lane: u32) -> Option<u64> {
        self.stabilized_at(lane)
    }

    fn lane_clock(&self) -> u64 {
        self.draws
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) -> Result<(), CheckpointError> {
        w.put_u8(snapshot_tags::REPLICA);
        snapshot_tags::write_config(w, self.population(), self.counts.len());
        w.put_u32(self.lanes);
        w.put_u32(self.planes as u32);
        w.put_u64(self.n as u64);
        for &word in &self.words {
            w.put_u64(word);
        }
        w.put_u64(self.live);
        // Lane counts are serialized in the scalar lane-major layout
        // regardless of the in-memory representation, keeping the snapshot
        // format independent of the packed fast path.
        if self.packed {
            let states = self.counts.len();
            for l in 0..self.lanes as usize {
                let buf = self.unpack_lane(l);
                for &c in &buf[..states] {
                    w.put_u64(c);
                }
            }
        } else {
            for &c in &self.lane_counts {
                w.put_u64(c);
            }
        }
        for &t in &self.stab_time {
            w.put_u64(t);
        }
        w.put_u64(self.draws);
        w.put_u64(self.interactions);
        w.put_u64(self.effective);
        w.put_u64(self.next_scan);
        self.telemetry.write_snapshot(w);
        match &self.hist {
            Some(h) => {
                w.put_bool(true);
                h.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.noop_run);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        snapshot_tags::expect(r, snapshot_tags::REPLICA, "replica")?;
        snapshot_tags::expect_config(r, self.population(), self.counts.len())?;
        let lanes = r.get_u32()?;
        let planes = r.get_u32()? as usize;
        let n = r.get_u64()? as usize;
        if lanes != self.lanes || planes != self.planes || n != self.n {
            return Err(CheckpointError::Corrupt(format!(
                "replica snapshot geometry (lanes={lanes}, planes={planes}, n={n}) \
                 does not match the simulator (lanes={}, planes={}, n={})",
                self.lanes, self.planes, self.n
            )));
        }
        let states = self.counts.len();
        let mut words = Vec::with_capacity(n * planes);
        for _ in 0..n * planes {
            words.push(r.get_u64()?);
        }
        let live = r.get_u64()?;
        if lanes < 64 && live >> lanes != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "replica live bitmap {live:#x} has bits beyond lane {lanes}"
            )));
        }
        let mut lane_counts = Vec::with_capacity(lanes as usize * states);
        for _ in 0..lanes as usize * states {
            lane_counts.push(r.get_u64()?);
        }
        let mut counts = vec![0u64; states];
        for (i, &c) in lane_counts.iter().enumerate() {
            counts[i % states] += c;
        }
        let total: u64 = counts.iter().sum();
        if total != self.population() {
            return Err(CheckpointError::Corrupt(format!(
                "replica snapshot counts sum to {total}, expected {}",
                self.population()
            )));
        }
        for (lane, chunk) in lane_counts.chunks_exact(states).enumerate() {
            let lane_total: u64 = chunk.iter().sum();
            if lane_total != n as u64 {
                return Err(CheckpointError::Corrupt(format!(
                    "replica snapshot lane {lane} counts sum to {lane_total}, expected {n}"
                )));
            }
        }
        let mut stab_time = Vec::with_capacity(lanes as usize);
        for _ in 0..lanes {
            stab_time.push(r.get_u64()?);
        }
        let draws = r.get_u64()?;
        let interactions = r.get_u64()?;
        let effective = r.get_u64()?;
        let next_scan = r.get_u64()?;
        let telemetry = EngineTelemetry::read_snapshot(r)?;
        let hist = if r.get_bool()? {
            Some(Box::new(EventHistograms::read_snapshot(r)?))
        } else {
            None
        };
        let noop_run = r.get_u64()?;
        self.words = words;
        self.live = live;
        if self.packed {
            for (l, chunk) in lane_counts.chunks_exact(states).enumerate() {
                self.packed_counts[l] = pack_lane(chunk);
            }
        } else {
            self.lane_counts = lane_counts;
        }
        self.counts = counts;
        self.stab_time = stab_time;
        self.draws = draws;
        self.interactions = interactions;
        self.effective = effective;
        self.next_scan = next_scan;
        self.telemetry = telemetry;
        self.hist = hist;
        self.noop_run = noop_run;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::CliqueScheduler;
    use crate::simulator::{AgentSimulator, Simulator};

    /// `lanes` distinct epidemic layouts over `n` agents.
    fn epidemic_layouts(n: usize, infected: usize, lanes: u32, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = SimRng::new(seed);
        (0..lanes)
            .map(|_| {
                let mut layout = vec![1usize; n];
                for s in layout.iter_mut().take(infected) {
                    *s = 0;
                }
                rng.shuffle(&mut layout);
                layout
            })
            .collect()
    }

    #[test]
    fn lane_zero_is_bit_identical_to_a_scalar_run() {
        let n = 40;
        let layouts = epidemic_layouts(n, 3, 8, 5);
        let mut replica = ReplicaSimulator::new_clique(OneWayEpidemic, n, &layouts);
        let mut scalar =
            AgentSimulator::new(OneWayEpidemic, CliqueScheduler::new(n), layouts[0].clone());
        let mut rng_r = SimRng::new(77);
        let mut rng_s = SimRng::new(77);
        for _ in 0..5_000 {
            replica.draw_step(&mut rng_r);
            scalar.step(&mut rng_s);
            assert_eq!(replica.lane_states(0), scalar.states());
            assert_eq!(replica.counts_of_lane(0), scalar.counts());
            if replica.is_silent() {
                break;
            }
        }
    }

    #[test]
    fn lanes_complete_and_retire_monotonically() {
        let n = 30;
        let layouts = epidemic_layouts(n, 1, 16, 9);
        let mut sim = ReplicaSimulator::new_clique(OneWayEpidemic, n, &layouts);
        let mut rng = SimRng::new(3);
        let mut prev_live = sim.live_mask();
        while !sim.is_silent() {
            sim.draw_step(&mut rng);
            let live = sim.live_mask();
            assert_eq!(live & !prev_live, 0, "a retired lane came back");
            prev_live = live;
        }
        for lane in 0..16 {
            assert_eq!(sim.counts_of_lane(lane), &[n as u64, 0]);
            let t = sim.stabilized_at(lane).expect("lane stabilized");
            assert!(t > 0 && t <= sim.draws());
        }
        assert_eq!(sim.counts(), &[16 * n as u64, 0]);
        assert_eq!(sim.lane_stabilized_at(0), sim.stabilized_at(0));
    }

    #[test]
    fn retired_lane_counts_are_frozen() {
        let n = 20;
        let layouts = epidemic_layouts(n, 2, 4, 21);
        let mut sim = ReplicaSimulator::new_clique(OneWayEpidemic, n, &layouts);
        let mut rng = SimRng::new(8);
        let mut frozen: Vec<Option<Vec<u64>>> = vec![None; 4];
        for _ in 0..200_000 {
            sim.draw_step(&mut rng);
            for lane in 0..4u32 {
                if sim.stabilized_at(lane).is_some() {
                    let counts = sim.counts_of_lane(lane).to_vec();
                    match &frozen[lane as usize] {
                        None => frozen[lane as usize] = Some(counts),
                        Some(expect) => assert_eq!(&counts, expect, "lane {lane} moved"),
                    }
                }
            }
            if sim.is_silent() {
                break;
            }
        }
        assert!(sim.is_silent());
    }

    #[test]
    fn aggregate_clocks_are_lane_sums() {
        let n = 25;
        let layouts = epidemic_layouts(n, 5, 3, 2);
        let mut sim = ReplicaSimulator::new_clique(OneWayEpidemic, n, &layouts);
        let mut rng = SimRng::new(4);
        for _ in 0..50 {
            sim.draw_step(&mut rng);
        }
        // All three lanes live for 50 draws (infection can't finish in 50
        // draws from 5 infected here, and can't die out).
        assert_eq!(Simulator::interactions(&sim), 150);
        assert_eq!(sim.telemetry().scheduled, Simulator::interactions(&sim));
        assert_eq!(
            sim.telemetry().effective,
            Simulator::effective_interactions(&sim)
        );
        assert_eq!(sim.telemetry().pair_draws, 50);
        assert_eq!(Simulator::population(&sim), 75);
    }

    #[test]
    fn graph_mode_matches_scalar_draw_stream() {
        let g = Graph::path(12);
        let mut layouts = epidemic_layouts(12, 2, 4, 11);
        // Make lane 0's layout the scalar reference.
        let reference = layouts[0].clone();
        layouts[0] = reference.clone();
        let mut replica = ReplicaSimulator::new_graph(OneWayEpidemic, g.clone(), &layouts);
        let mut scalar = AgentSimulator::new(
            OneWayEpidemic,
            crate::scheduler::GraphScheduler::new(g),
            reference,
        );
        let mut rng_r = SimRng::new(19);
        let mut rng_s = SimRng::new(19);
        for _ in 0..2_000 {
            replica.draw_step(&mut rng_r);
            scalar.step(&mut rng_s);
            assert_eq!(replica.lane_states(0), scalar.states());
        }
    }

    #[test]
    fn disconnected_graph_lanes_freeze_and_retire() {
        // Two disjoint triangles: infected agents stranded in one
        // component leave the other susceptible forever — the lane is
        // graph-silent but never count-silent, so only the edge scan can
        // retire it.
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        let g = Graph::from_edges(6, edges);
        let layouts: Vec<Vec<usize>> = vec![
            vec![0, 1, 1, 1, 1, 1], // infection confined to component {0,1,2}
            vec![1, 1, 1, 0, 1, 1], // confined to {3,4,5}
        ];
        let mut sim = ReplicaSimulator::new_graph(OneWayEpidemic, g, &layouts);
        assert!(sim.needs_scan, "disconnected graph must scan");
        let mut rng = SimRng::new(6);
        let mut steps = 0u64;
        while !sim.is_silent() && steps < 10_000_000 {
            sim.draw_step(&mut rng);
            steps += 1;
        }
        assert!(sim.is_silent(), "frozen lanes were never retired");
        for lane in 0..2 {
            assert_eq!(sim.counts_of_lane(lane), &[3, 3], "lane {lane}");
            assert!(sim.stabilized_at(lane).is_some());
        }
    }

    #[test]
    fn connected_graph_skips_the_scan() {
        let g = Graph::path(8);
        let layouts = epidemic_layouts(8, 1, 2, 3);
        let sim = ReplicaSimulator::new_graph(OneWayEpidemic, g, &layouts);
        assert!(!sim.needs_scan);
    }

    #[test]
    fn initially_silent_lanes_retire_at_draw_zero() {
        let layouts: Vec<Vec<usize>> = vec![
            vec![0, 0, 0, 0], // all infected: silent
            vec![1, 0, 1, 1], // mixed: live
        ];
        let sim = ReplicaSimulator::new_clique(OneWayEpidemic, 4, &layouts);
        assert_eq!(sim.stabilized_at(0), Some(0));
        assert_eq!(sim.stabilized_at(1), None);
        assert_eq!(sim.live_mask(), 0b10);
    }

    #[test]
    fn snapshot_round_trip_resumes_bit_identically() {
        let n = 30;
        let layouts = epidemic_layouts(n, 3, 8, 13);
        let mut sim = ReplicaSimulator::new_clique(OneWayEpidemic, n, &layouts);
        let mut rng = SimRng::new(31);
        for _ in 0..500 {
            sim.draw_step(&mut rng);
        }
        let mut w = SnapshotWriter::new();
        sim.snapshot_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut fresh = ReplicaSimulator::new_clique(OneWayEpidemic, n, &layouts);
        let mut r = SnapshotReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        // Drive both forward with the same stream: identical trajectories.
        let mut rng2 = rng.clone();
        for _ in 0..500 {
            sim.draw_step(&mut rng);
            fresh.draw_step(&mut rng2);
        }
        assert_eq!(sim.live_mask(), fresh.live_mask());
        assert_eq!(sim.counts(), fresh.counts());
        assert_eq!(
            Simulator::interactions(&sim),
            Simulator::interactions(&fresh)
        );
        for lane in 0..8 {
            assert_eq!(sim.lane_states(lane), fresh.lane_states(lane));
            assert_eq!(sim.stabilized_at(lane), fresh.stabilized_at(lane));
        }
    }

    #[test]
    fn snapshot_into_wrong_geometry_is_rejected() {
        let layouts = epidemic_layouts(10, 2, 4, 1);
        let mut sim = ReplicaSimulator::new_clique(OneWayEpidemic, 10, &layouts);
        let mut rng = SimRng::new(2);
        sim.draw_step(&mut rng);
        let mut w = SnapshotWriter::new();
        sim.snapshot_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let other_layouts = epidemic_layouts(10, 2, 8, 1);
        let mut other = ReplicaSimulator::new_clique(OneWayEpidemic, 10, &other_layouts);
        let mut r = SnapshotReader::new(&bytes);
        assert!(other.restore_state(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "1..=64 replica lanes")]
    fn too_many_lanes_rejected() {
        let layouts = epidemic_layouts(4, 1, 64, 1);
        let mut too_many = layouts;
        too_many.push(vec![1, 1, 1, 1]);
        ReplicaSimulator::new_clique(OneWayEpidemic, 4, &too_many);
    }
}
