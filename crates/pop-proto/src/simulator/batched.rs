//! Batch-leaping exact simulator.
//!
//! # The collision-aware batching idea
//!
//! Under the uniform clique scheduler the sequence of ordered agent pairs
//! is i.i.d. As long as no agent appears twice — a *collision-free* run of
//! interactions — the interacting agents' states at interaction time equal
//! their states at the start of the run, so the whole block can be sampled
//! at once from the initial counts and applied count-wise (disjoint agents
//! ⇒ commuting updates). The algorithm, per batch:
//!
//! 1. **Collision horizon.** The index `T` of the first interaction that
//!    reuses an agent follows the birthday-style law
//!    `P[T > t] = n! / ((n−2t)! · (n(n−1))^t)`, sampled exactly by
//!    inverse-CDF bisection on the log-survival function (log-gamma from
//!    `sim-stats`). The horizon is truncated at a cap (see *Exactness*).
//! 2. **Participants.** The `2L` distinct agents of the collision-free
//!    prefix are a uniform without-replacement draw from the population:
//!    their per-state counts follow a multivariate hypergeometric law.
//! 3. **Pairing.** Which `L` of them initiate is another hypergeometric
//!    split, and the initiator→responder matching is resolved state-by-
//!    state into a table `M[i][j]` of ordered state-pair counts — the
//!    "multinomial split" of the batch.
//! 4. **Transitions.** Each `(i, j)` with `M[i][j] = m` applies
//!    `f(i, j)` `m` times count-wise; no-op pairs only advance the clock.
//! 5. **Collision interaction.** If `T` landed inside the cap, the
//!    colliding interaction is simulated individually from the exact
//!    conditional law (at least one participant among the batch's agents,
//!    whose post-transition states are known as counts).
//!
//! Each batch therefore costs O(k² hypergeometric draws + log n) and
//! advances ~√n interactions: sub-constant work per interaction.
//!
//! # No-op-dominated phases
//!
//! Near absorbing boundaries almost every interaction is a no-op and a
//! batch of √n interactions contains barely any events, so leaping stops
//! paying. There the simulator switches to *geometric skip-ahead*: the
//! number of no-ops before the next effective interaction is geometric
//! with the exact effective-pair probability of the current configuration,
//! and the effective interaction is drawn from the exact conditional
//! pair law. (This generalizes `usd-core`'s `SkipAheadUsd` to arbitrary
//! protocols.) The switch is purely a cost-model decision — both engines
//! simulate the same chain.
//!
//! # Exactness
//!
//! Every sampling step above follows the exact conditional law of the
//! agent-level chain (up to `f64` evaluation of log-gamma CDFs, the same
//! class of rounding as `SkipAheadUsd`'s geometric inversion), so the
//! induced chain on count configurations is the `CountSimulator` chain —
//! verified distributionally in `tests/simulator_equivalence.rs`.
//!
//! Stop predicates are evaluated at batch boundaries. For *stabilization*
//! the timing is nevertheless exact for any protocol whose silent
//! configurations are monochromatic (USD, epidemics, majority dynamics…):
//! reaching silence from a configuration with `r = n − max_count` active
//! agents requires changing at least `r` agents, and the batch length is
//! capped so a batch plus its collision interaction touches at most `r − 1`
//! agents — silence can therefore never happen strictly inside a batch,
//! only at its boundary, where it is observed immediately. For exotic
//! protocols with non-monochromatic silent configurations, silence may be
//! reported up to one batch (~√n interactions) late.

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::config::CountConfig;
use crate::protocol::Protocol;
use crate::simulator::{snapshot_tags, Simulator};
use crate::telemetry::timeline::EventHistograms;
use crate::telemetry::EngineTelemetry;
use sim_stats::binomial::ln_factorial;
use sim_stats::multinomial::{hypergeometric_pairing_table, multivariate_hypergeometric};
use sim_stats::rng::SimRng;

/// Smallest batch worth the fixed sampling cost; below this the simulator
/// steps exactly.
const MIN_BATCH: u64 = 16;

/// State count from which the per-batch pairing table is sampled through
/// [`hypergeometric_pairing_table`]'s position-derived streams (tree-wise,
/// optionally threaded) instead of the sequential chain rule. Below this
/// the table is so small that the stream setup costs more than the rows;
/// the threshold depends only on `k`, so runs stay bit-identical for any
/// thread count either way.
const PAIR_TABLE_MIN_K: usize = 16;

/// Batch-leaping simulator for the uniform clique scheduler.
///
/// See the module docs for the algorithm. Construction mirrors
/// [`CountSimulator`](crate::simulator::CountSimulator); memory is O(k²)
/// for the cached transition table.
///
/// Observation granularity
/// ([`advance_observed`](crate::Simulator::advance_observed)):
/// **checkpoint** — each advancement leaps a whole collision-free batch
/// (~√n interactions, shrinking near silence), so one observation
/// summarizes every effective event of the batch; intra-batch extrema and
/// crossing instants are resolved to the batch boundary.
#[derive(Debug, Clone)]
pub struct BatchSimulator<P: Protocol> {
    protocol: P,
    counts: Vec<u64>,
    n: u64,
    k: usize,
    interactions: u64,
    effective_interactions: u64,
    /// Cached `transition_indices` for all ordered state pairs
    /// (`table[i * k + j]`).
    table: Vec<(u32, u32)>,
    /// Whether `(i, j)` is a no-op (`noop[i * k + j]`).
    noop: Vec<bool>,
    /// Cached `ln(n!)` for the collision-horizon CDF.
    ln_fact_n: f64,
    /// Cached `ln(n(n−1))`.
    ln_pairs: f64,
    /// Worker-thread cap for the per-batch pairing-table rows (resolved
    /// once at construction from the process-wide `--threads`/`USD_THREADS`
    /// discipline; see [`BatchSimulator::with_threads`]). Never changes
    /// results — the row sampler's streams are position-derived — only
    /// wall clock.
    threads: usize,
    /// Engine telemetry: live counters here are `scheduled`/`effective`
    /// (mirroring the clocks), `blocks`/`block_draws` (batches leapt and
    /// the scheduled draws they covered), `block_applied` (effective
    /// interactions applied count-wise inside batches),
    /// `fallback_literal` (effective collision interactions simulated
    /// individually), `table_draws` (hypergeometric row draws),
    /// `skip_draws` (geometric skip-ahead draws), `dense_steps` and
    /// `pair_draws` (single-step and conditional-pair draws). No spans.
    telemetry: EngineTelemetry,
    /// Per-event histograms (opt-in): geometric skip lengths, per-batch
    /// effective block sizes, and collision fallbacks.
    hist: Option<Box<EventHistograms>>,
}

impl<P: Protocol> BatchSimulator<P> {
    /// Create from a count configuration. Requires n ≥ 2.
    pub fn new(protocol: P, config: &CountConfig) -> Self {
        assert_eq!(
            config.num_states(),
            protocol.num_states(),
            "configuration does not match protocol state count"
        );
        assert!(config.n() >= 2, "need at least 2 agents");
        let k = protocol.num_states();
        let mut table = Vec::with_capacity(k * k);
        let mut noop = Vec::with_capacity(k * k);
        for i in 0..k {
            for j in 0..k {
                let (a, b) = protocol.transition_indices(i, j);
                table.push((a as u32, b as u32));
                noop.push((a, b) == (i, j));
            }
        }
        let n = config.n();
        let nf = n as f64;
        BatchSimulator {
            protocol,
            counts: config.counts().to_vec(),
            n,
            k,
            interactions: 0,
            effective_interactions: 0,
            table,
            noop,
            ln_fact_n: ln_factorial(n),
            ln_pairs: nf.ln() + (nf - 1.0).ln(),
            threads: sim_stats::threads::resolve_threads(),
            telemetry: EngineTelemetry::new(),
            hist: None,
        }
    }

    /// Cap the worker threads used for the per-batch pairing-table rows
    /// (default: the process-wide resolution at construction time).
    /// Thread count is bit-neutral: any value produces identical runs.
    /// Builder twin of the deprecated [`set_threads`](Self::set_threads);
    /// `RunSpec::threads` resolves the value once and passes it here.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Cap the worker threads used for the per-batch pairing-table rows.
    #[deprecated(
        since = "0.1.0",
        note = "thread counts are resolved once by RunSpec::threads and passed through \
                with_threads; mutate-after-build is no longer part of the API"
    )]
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Per-state counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Current count configuration (copies counts).
    pub fn config(&self) -> CountConfig {
        CountConfig::from_counts(self.counts.clone())
    }

    /// Total interactions simulated.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Interactions that changed the configuration.
    pub fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    /// Parallel time elapsed (= interactions / n).
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.n as f64
    }

    /// Whether the configuration is silent.
    pub fn is_silent(&self) -> bool {
        for (i, &ci) in self.counts.iter().enumerate() {
            if ci == 0 {
                continue;
            }
            for (j, &cj) in self.counts.iter().enumerate() {
                if cj == 0 || (i == j && ci < 2) {
                    continue;
                }
                if !self.noop[i * self.k + j] {
                    return false;
                }
            }
        }
        true
    }

    /// Sample a state index ∝ `weights` by linear scan (k is small).
    #[inline]
    fn pick_state(weights: &[u64], rng: &mut SimRng, total: u64) -> usize {
        debug_assert!(total > 0);
        let mut r = rng.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if r < w {
                return i;
            }
            r -= w;
        }
        unreachable!("categorical scan exhausted weights");
    }

    /// Apply `f(si, sj)` to the counts; returns whether anything changed.
    #[inline]
    fn apply_pair(&mut self, si: usize, sj: usize) -> bool {
        if self.noop[si * self.k + sj] {
            return false;
        }
        let (ti, tj) = self.table[si * self.k + sj];
        self.counts[si] -= 1;
        self.counts[sj] -= 1;
        self.counts[ti as usize] += 1;
        self.counts[tj as usize] += 1;
        self.effective_interactions += 1;
        self.telemetry.effective += 1;
        true
    }

    /// Simulate exactly one interaction (the `CountSimulator` law, via
    /// linear-scan sampling); returns whether it changed the configuration.
    pub fn step(&mut self, rng: &mut SimRng) -> bool {
        self.interactions += 1;
        self.telemetry.scheduled += 1;
        self.telemetry.dense_steps += 1;
        self.telemetry.pair_draws += 1;
        let si = Self::pick_state(&self.counts, rng, self.n);
        self.counts[si] -= 1;
        let sj = Self::pick_state(&self.counts, rng, self.n - 1);
        self.counts[si] += 1;
        self.apply_pair(si, sj)
    }

    /// Total weight of ordered *effective* (non-no-op) agent pairs, and of
    /// all ordered pairs, as exact 128-bit integers.
    fn effective_pair_weight(&self) -> (u128, u128) {
        let mut eff: u128 = 0;
        for (i, &ci) in self.counts.iter().enumerate() {
            if ci == 0 {
                continue;
            }
            for (j, &cj) in self.counts.iter().enumerate() {
                if self.noop[i * self.k + j] {
                    continue;
                }
                let pairs = if i == j {
                    ci as u128 * (cj as u128 - 1)
                } else {
                    ci as u128 * cj as u128
                };
                eff += pairs;
            }
        }
        let total = self.n as u128 * (self.n as u128 - 1);
        (eff, total)
    }

    /// Geometric skip-ahead: jump over the no-ops preceding the next
    /// effective interaction and simulate that interaction from the exact
    /// conditional pair law. Advances at most `max` interactions; if the
    /// skip overshoots `max`, the clock advances by exactly `max` no-ops
    /// (a truncated geometric — still exact). Returns interactions
    /// advanced and whether the counts changed. Must not be called on a
    /// silent configuration.
    ///
    /// `(eff, total)` is the caller's already-computed
    /// [`effective_pair_weight`](Self::effective_pair_weight) — the caller
    /// always has it (it decided to skip rather than batch with it), and
    /// re-scanning here would double the O(k²) cost of the hot fallback.
    fn skip_step(&mut self, rng: &mut SimRng, max: u64, eff: u128, total: u128) -> (u64, bool) {
        debug_assert!(eff > 0, "skip_step on a silent configuration");
        let p_eff = (eff as f64 / total as f64).min(1.0);
        self.telemetry.skip_draws += 1;
        let skipped = rng.geometric(p_eff);
        if let Some(h) = &mut self.hist {
            // Every draw is a genuine Geom(p_eff) sample, horizon
            // truncation included (memorylessness makes the redraw exact).
            h.skip_len.add_u64(skipped);
        }
        if skipped >= max {
            // The effective interaction lands beyond the horizon: the
            // first `max` interactions are conditionally all no-ops.
            self.interactions += max;
            self.telemetry.scheduled += max;
            return (max, false);
        }
        self.interactions += skipped + 1;
        self.telemetry.scheduled += skipped + 1;
        self.telemetry.pair_draws += 1;

        // Sample the effective ordered pair (i, j) ∝ cᵢ(cⱼ − [i=j]) over
        // non-no-op pairs.
        let mut r = rng.below_u128(eff);
        for (i, &ci) in self.counts.iter().enumerate() {
            if ci == 0 {
                continue;
            }
            for (j, &cj) in self.counts.iter().enumerate() {
                if self.noop[i * self.k + j] {
                    continue;
                }
                let pairs = if i == j {
                    ci as u128 * (cj as u128 - 1)
                } else {
                    ci as u128 * cj as u128
                };
                if r < pairs {
                    self.apply_pair(i, j);
                    return (skipped + 1, true);
                }
                r -= pairs;
            }
        }
        unreachable!("effective-pair scan exhausted weights");
    }

    /// Log-survival `ln P[first t interactions are collision-free]`.
    #[inline]
    fn ln_survival(&self, t: u64) -> f64 {
        self.ln_fact_n - ln_factorial(self.n - 2 * t) - t as f64 * self.ln_pairs
    }

    /// Sample the truncated collision horizon: returns the number of
    /// collision-free interactions `L ≤ cap` and whether a collision
    /// occurs at interaction `L + 1` (false means the horizon was clear
    /// through `cap`).
    fn sample_collision_horizon(&self, rng: &mut SimRng, cap: u64) -> (u64, bool) {
        debug_assert!(2 * cap < self.n);
        let ln_u = loop {
            let u = rng.f64();
            if u > 0.0 {
                break u.ln();
            }
        };
        if ln_u <= self.ln_survival(cap) {
            return (cap, false);
        }
        // First collision index T = min { t ≥ 1 : ln P[T > t] < ln u }.
        // P[T > 1] = 1 (two distinct agents never self-collide), so T ≥ 2.
        let (mut lo, mut hi) = (1u64, cap); // invariant: G(lo) ≥ u > G(hi)
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if ln_u <= self.ln_survival(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (hi - 1, true)
    }

    /// Sample and apply one collision-free batch of `length` interactions.
    /// Returns the batch participants' post-transition state counts (the
    /// `2·length` agents involved).
    fn apply_batch(&mut self, rng: &mut SimRng, length: u64) -> Vec<u64> {
        let k = self.k;
        let applied_before = self.telemetry.block_applied;
        self.telemetry.blocks += 1;
        self.telemetry.block_draws += length;
        // 2. Participants: 2L distinct agents, without replacement.
        let participants = multivariate_hypergeometric(rng, &self.counts, 2 * length);
        // 3. Initiator / responder split, then the k² pairing-table rows.
        let initiators = multivariate_hypergeometric(rng, &participants, length);
        self.telemetry.table_draws += 2;
        let mut responders: Vec<u64> = participants
            .iter()
            .zip(initiators.iter())
            .map(|(&m, &a)| m - a)
            .collect();
        // Remove all participants; they re-enter with post-transition
        // states.
        for (c, &m) in self.counts.iter_mut().zip(participants.iter()) {
            *c -= m;
        }
        let mut post = vec![0u64; k];
        if k >= PAIR_TABLE_MIN_K {
            // Large alphabets: sample the whole table from position-derived
            // streams under a master drawn here — the rows dominate the
            // batch cost at this size, and the tree decomposition fans
            // them out over `self.threads` workers with bit-identical
            // results for any thread count.
            let pairing =
                hypergeometric_pairing_table(rng.next(), &initiators, &responders, self.threads);
            self.telemetry.table_draws += k as u64;
            // 4. Apply f(i, j) count-wise, one pair class at a time.
            for (cell, &m_ij) in pairing.iter().enumerate() {
                if m_ij == 0 {
                    continue;
                }
                let (ti, tj) = self.table[cell];
                post[ti as usize] += m_ij;
                post[tj as usize] += m_ij;
                if !self.noop[cell] {
                    self.effective_interactions += m_ij;
                    self.telemetry.effective += m_ij;
                    self.telemetry.block_applied += m_ij;
                }
            }
        } else {
            // Small alphabets: the sequential chain rule row by row — the
            // same law with cheaper constants (no per-subtree stream setup)
            // at a size where parallelism could never pay.
            let mut remaining = length;
            for (i, &a_i) in initiators.iter().enumerate() {
                if a_i == 0 {
                    continue;
                }
                let row = if a_i == remaining {
                    std::mem::take(&mut responders)
                } else {
                    self.telemetry.table_draws += 1;
                    let row = multivariate_hypergeometric(rng, &responders, a_i);
                    for (b, &r) in responders.iter_mut().zip(row.iter()) {
                        *b -= r;
                    }
                    row
                };
                remaining -= a_i;
                // 4. Apply f(i, j) count-wise.
                for (j, &m_ij) in row.iter().enumerate() {
                    if m_ij == 0 {
                        continue;
                    }
                    let (ti, tj) = self.table[i * k + j];
                    post[ti as usize] += m_ij;
                    post[tj as usize] += m_ij;
                    if !self.noop[i * k + j] {
                        self.effective_interactions += m_ij;
                        self.telemetry.effective += m_ij;
                        self.telemetry.block_applied += m_ij;
                    }
                }
                if remaining == 0 {
                    break;
                }
            }
        }
        for (c, &p) in self.counts.iter_mut().zip(post.iter()) {
            *c += p;
        }
        self.interactions += length;
        self.telemetry.scheduled += length;
        if let Some(h) = &mut self.hist {
            h.block_size
                .add_u64(self.telemetry.block_applied - applied_before);
        }
        post
    }

    /// Simulate the colliding interaction that ended a batch whose
    /// participants now hold the states counted by `post`.
    fn apply_collision(&mut self, rng: &mut SimRng, post: &[u64]) {
        let used: u64 = post.iter().sum();
        let fresh = self.n - used;
        debug_assert!(used >= 2);
        // Ordered pair categories, excluding fresh–fresh (no collision):
        // used–used, used–fresh, fresh–used.
        let w_uu = used as u128 * (used as u128 - 1);
        let w_uf = used as u128 * fresh as u128;
        let draw = rng.below_u128(w_uu + 2 * w_uf);

        // Fresh agents' states: current counts minus the batch
        // participants' post states.
        let fresh_state = |counts: &[u64], rng: &mut SimRng| {
            let weights: Vec<u64> = counts
                .iter()
                .zip(post.iter())
                .map(|(&c, &p)| c - p)
                .collect();
            Self::pick_state(&weights, rng, fresh)
        };
        let (si, sj) = if draw < w_uu {
            // Two distinct used agents, without replacement from `post`.
            let mut post_minus = post.to_vec();
            let si = Self::pick_state(&post_minus, rng, used);
            post_minus[si] -= 1;
            let sj = Self::pick_state(&post_minus, rng, used - 1);
            (si, sj)
        } else if draw < w_uu + w_uf {
            let si = Self::pick_state(post, rng, used);
            let sj = fresh_state(&self.counts, rng);
            (si, sj)
        } else {
            let si = fresh_state(&self.counts, rng);
            let sj = Self::pick_state(post, rng, used);
            (si, sj)
        };
        self.interactions += 1;
        self.telemetry.scheduled += 1;
        self.telemetry.pair_draws += 1;
        if self.apply_pair(si, sj) {
            // The colliding interaction is the batch engine's literal
            // single-event fallback.
            self.telemetry.fallback_literal += 1;
            if let Some(h) = &mut self.hist {
                h.fallback_run.add_u64(1);
            }
        }
    }

    /// Advance by at most `max` interactions using the cheapest exact
    /// mechanism for the current configuration (batch leap, geometric
    /// skip, or a single step). Returns interactions advanced.
    pub fn advance(&mut self, rng: &mut SimRng, max: u64) -> u64 {
        self.advance_changed(rng, max).0
    }

    /// [`BatchSimulator::advance`], additionally reporting whether the
    /// counts changed — run drivers use the flag to skip stop/silence
    /// re-evaluation after provably-no-op advancements.
    pub fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        if max == 0 {
            return (0, false);
        }
        let (eff, total) = self.effective_pair_weight();
        if eff == 0 {
            // Silent: every remaining interaction is provably a no-op, so
            // the whole horizon can be charged to the clock at once.
            self.interactions += max;
            self.telemetry.scheduled += max;
            return (max, false);
        }
        // Distance guard: a batch of length L plus its collision touches
        // ≤ 2(L+1) agents, while monochromatic silence needs ≥ r changes.
        let r = self.n - self.counts.iter().max().copied().unwrap_or(0);
        let cap = ((r.saturating_sub(3)) / 2)
            .min(max.saturating_sub(1))
            .min((self.n - 1) / 2);
        if cap < MIN_BATCH {
            return self.skip_step(rng, max, eff, total);
        }
        // Cost model: a batch advances ≈ min(cap, 0.6√n) interactions; a
        // geometric skip advances ≈ total/eff. Prefer the bigger leap.
        let expected_skip = (total / eff.max(1)) as u64;
        let horizon = (0.6 * (self.n as f64).sqrt()) as u64;
        if expected_skip > cap.min(horizon.max(1)) {
            return self.skip_step(rng, max, eff, total);
        }
        let effective_before = self.effective_interactions;
        let (length, collided) = self.sample_collision_horizon(rng, cap);
        let post = self.apply_batch(rng, length);
        let advanced = if collided {
            self.apply_collision(rng, &post);
            length + 1
        } else {
            length
        };
        (advanced, self.effective_interactions > effective_before)
    }

    /// Run until `stop` returns true on the counts, silence, or `budget`
    /// interactions; returns interactions simulated by this call. See
    /// [`Simulator::run_until`] for the boundary-evaluation contract.
    pub fn run(
        &mut self,
        rng: &mut SimRng,
        budget: u64,
        mut stop: impl FnMut(&Self) -> bool,
    ) -> u64 {
        let start = self.interactions;
        if stop(self) || self.is_silent() {
            return 0;
        }
        loop {
            let done = self.interactions - start;
            if done >= budget {
                return done;
            }
            let (advanced, changed) = self.advance_changed(rng, budget - done);
            if advanced == 0 {
                return done;
            }
            if changed && (stop(self) || self.is_silent()) {
                return self.interactions - start;
            }
        }
    }
}

impl<P: Protocol> Simulator for BatchSimulator<P> {
    fn population(&self) -> u64 {
        self.n
    }

    fn num_states(&self) -> usize {
        self.k
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    fn step(&mut self, rng: &mut SimRng) -> bool {
        BatchSimulator::step(self, rng)
    }

    fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        BatchSimulator::advance_changed(self, rng, max)
    }

    fn is_silent(&self) -> bool {
        BatchSimulator::is_silent(self)
    }

    fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    fn set_histograms(&mut self, enabled: bool) {
        self.hist = if enabled {
            Some(Box::new(EventHistograms::new()))
        } else {
            None
        };
    }

    fn histograms(&self) -> Option<EventHistograms> {
        self.hist.as_deref().cloned()
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) -> Result<(), CheckpointError> {
        // Everything else in the struct (transition table, no-op mask,
        // log-factorial constants, thread count) is a pure function of the
        // constructor arguments, so counts + clocks + telemetry are the
        // complete mutable state.
        w.put_u8(snapshot_tags::BATCH);
        snapshot_tags::write_config(w, self.n, self.k);
        w.put_u64_slice(&self.counts);
        w.put_u64(self.interactions);
        w.put_u64(self.effective_interactions);
        self.telemetry.write_snapshot(w);
        match &self.hist {
            Some(h) => {
                w.put_bool(true);
                h.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        snapshot_tags::expect(r, snapshot_tags::BATCH, "batch")?;
        snapshot_tags::expect_config(r, self.n, self.k)?;
        let counts = r.get_u64_vec()?;
        if counts.len() != self.k {
            return Err(CheckpointError::Corrupt(format!(
                "batch snapshot has {} states (engine has {})",
                counts.len(),
                self.k
            )));
        }
        if counts.iter().sum::<u64>() != self.n {
            return Err(CheckpointError::Corrupt(
                "batch snapshot does not sum to the population".into(),
            ));
        }
        let interactions = r.get_u64()?;
        let effective_interactions = r.get_u64()?;
        let telemetry = EngineTelemetry::read_snapshot(r)?;
        let hist = if r.get_bool()? {
            Some(Box::new(EventHistograms::read_snapshot(r)?))
        } else {
            None
        };
        self.counts = counts;
        self.interactions = interactions;
        self.effective_interactions = effective_interactions;
        self.telemetry = telemetry;
        self.hist = hist;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OneWayEpidemic;

    fn epidemic(n: u64, infected: u64) -> BatchSimulator<OneWayEpidemic> {
        BatchSimulator::new(
            OneWayEpidemic,
            &CountConfig::from_counts(vec![infected, n - infected]),
        )
    }

    #[test]
    fn population_conserved_across_batches() {
        let mut sim = epidemic(10_000, 100);
        let mut rng = SimRng::new(1);
        while !sim.is_silent() {
            sim.advance(&mut rng, u64::MAX / 2);
            assert_eq!(sim.counts().iter().sum::<u64>(), 10_000);
            assert!(sim.interactions() < 100_000_000, "runaway epidemic");
        }
        assert_eq!(sim.counts(), &[10_000, 0]);
    }

    #[test]
    fn exact_step_matches_count_law_invariants() {
        let mut sim = epidemic(50, 25);
        let mut rng = SimRng::new(2);
        for _ in 0..5_000 {
            sim.step(&mut rng);
        }
        assert_eq!(sim.interactions(), 5_000);
        // Exactly 25 infections can ever happen.
        assert_eq!(sim.effective_interactions(), 25);
        assert_eq!(sim.counts(), &[50, 0]);
    }

    #[test]
    fn advance_respects_max() {
        let mut sim = epidemic(100_000, 1_000);
        let mut rng = SimRng::new(3);
        for max in [1u64, 7, 100, 1_000] {
            let before = sim.interactions();
            let advanced = sim.advance(&mut rng, max);
            assert!(
                advanced >= 1 && advanced <= max,
                "advanced {advanced} vs max {max}"
            );
            assert_eq!(sim.interactions() - before, advanced);
        }
    }

    #[test]
    fn silent_configuration_charges_clock_without_events() {
        let mut sim = epidemic(100, 100); // all infected: silent
        assert!(sim.is_silent());
        let mut rng = SimRng::new(4);
        let advanced = sim.advance(&mut rng, 12_345);
        assert_eq!(advanced, 12_345);
        assert_eq!(sim.interactions(), 12_345);
        assert_eq!(sim.effective_interactions(), 0);
    }

    #[test]
    fn effective_interactions_bounded_by_infections() {
        let mut sim = epidemic(100_000, 10);
        let mut rng = SimRng::new(5);
        while !sim.is_silent() {
            sim.advance(&mut rng, u64::MAX / 2);
        }
        // Each infection is one effective interaction.
        assert_eq!(sim.effective_interactions(), 100_000 - 10);
    }

    #[test]
    fn epidemic_completion_time_is_theta_n_log_n() {
        let n = 100_000u64;
        let mut total = 0.0;
        let reps = 5;
        for seed in 0..reps {
            let mut sim = epidemic(n, 1);
            let mut rng = SimRng::new(seed);
            while !sim.is_silent() {
                sim.advance(&mut rng, u64::MAX / 2);
            }
            total += sim.interactions() as f64;
        }
        let mean = total / reps as f64;
        let nf = n as f64;
        let theory = nf * nf.ln();
        assert!(
            mean > theory * 0.3 && mean < theory * 3.0,
            "mean {mean} vs theory {theory}"
        );
    }

    #[test]
    fn run_stops_at_predicate_boundary() {
        let mut sim = epidemic(10_000, 1);
        let mut rng = SimRng::new(6);
        sim.run(&mut rng, u64::MAX / 2, |s| s.counts()[0] >= 5_000);
        assert!(sim.counts()[0] >= 5_000);
        assert!(sim.counts()[0] < 10_000, "stop must fire before completion");
    }

    #[test]
    fn telemetry_mirrors_clocks_and_accounts_for_batches_and_skips() {
        // A full epidemic crosses batch leaping (bulk) and geometric
        // skip-ahead (endgame); the telemetry mirrors must track the
        // clocks exactly and the mechanism counters must account for the
        // run's structure.
        let mut sim = epidemic(100_000, 100);
        let mut rng = SimRng::new(23);
        while !sim.is_silent() {
            sim.advance(&mut rng, u64::MAX / 2);
        }
        let t = Simulator::telemetry(&sim);
        assert_eq!(t.scheduled, sim.interactions());
        assert_eq!(t.effective, sim.effective_interactions());
        assert!(t.blocks >= 1, "no batches leapt");
        assert!(t.block_draws >= t.blocks);
        assert!(t.skip_draws >= 1, "endgame never skipped");
        // Participants + initiators cost two hypergeometric draws per
        // batch before any pairing rows.
        assert!(t.table_draws >= 2 * t.blocks);
        // Every effective interaction is a count-wise batch application, a
        // literal collision fallback, or a skip-ahead event.
        assert!(t.block_applied + t.fallback_literal <= t.effective);
        assert_eq!(t.spans, crate::telemetry::SpanSet::new());
    }

    #[test]
    fn trait_object_usable() {
        let mut sim: Box<dyn Simulator> = Box::new(epidemic(1_000, 10));
        let mut rng = SimRng::new(7);
        let ran = sim.run_until(&mut rng, u64::MAX / 2, &mut |_| false);
        assert!(ran > 0);
        assert!(sim.is_silent());
        assert_eq!(sim.counts(), &[1_000, 0]);
        assert!(sim.parallel_time() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 agents")]
    fn tiny_population_rejected() {
        BatchSimulator::new(OneWayEpidemic, &CountConfig::from_counts(vec![1, 0]));
    }

    #[test]
    #[should_panic(expected = "state count")]
    fn wrong_state_count_rejected() {
        BatchSimulator::new(OneWayEpidemic, &CountConfig::from_counts(vec![1, 1, 1]));
    }
}
