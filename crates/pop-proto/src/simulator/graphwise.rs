//! Active-edge exact simulator for graph-restricted schedulers.
//!
//! # The active-edge idea
//!
//! Under [`GraphScheduler`](crate::scheduler::GraphScheduler) every
//! scheduled interaction picks a uniform edge and a uniform orientation.
//! Call an *orientation* `(i → j)` of an edge **active** when
//! `f(state_i, state_j) ≠ (state_i, state_j)`; let `W` be the total number
//! of active orientations and `2m` the number of orientations overall. A
//! scheduled interaction changes the configuration with probability exactly
//! `W / 2m`, independently across steps while the configuration is
//! unchanged — so the number of no-ops before the next *effective*
//! interaction is geometric with success probability `W / 2m`, and the
//! effective interaction itself is a uniform draw from the active
//! orientations.
//!
//! [`GraphSimulator`] adapts its machinery to the activity level:
//!
//! * **dense phase**: interactions are simulated literally — a uniform
//!   edge and orientation per step, O(1), *no* weight bookkeeping — so on
//!   effective-dominated stretches (USD's bulk phase on expanders has a
//!   30–55% effective fraction) the engine matches the agentwise cost
//!   instead of paying per-edge updates that buy nothing. A run of
//!   consecutive no-op draws long enough to certify a collapsed activity
//!   fraction triggers the sparse phase (the failed draws *are* scheduled
//!   no-op interactions, so nothing is wasted or approximated);
//! * **sparse phase**: the engine scans the graph once and hands the
//!   per-edge active-orientation weights (0, 1, or 2) to the shared
//!   [`SparseSkipper`](super::sparse) — the block-leaping Fenwick engine
//!   both graph simulators use. Each no-op run is skipped in O(1) (the run
//!   length is geometric with success probability `W / 2m`, with the
//!   inversion constant cached per distinct `W`), the effective edge is
//!   sampled in O(log m) from the exact weighted law, and the re-weighting
//!   of the ≤ d incident edges of a changed agent is *deferred*: deltas
//!   coalesce in the skipper's sidecar and hit the tree in one batched
//!   pass per ~64-event block, so frontier dynamics whose deltas cancel
//!   pay a fraction of the old per-event O(d log m). When the activity
//!   fraction recovers past a hysteresis threshold the tree is dropped and
//!   the dense phase resumes.
//!
//! On no-op-dominated regimes (low-conductance families like the cycle and
//! torus spend > 99% of their schedule on no-ops; any topology's endgame
//! collapses to a few active edges) the scheduled-to-effective ratio is
//! what separates this engine from the per-interaction agentwise engine,
//! which is why it is the one that makes n = 10⁶ graph topologies cheap.
//!
//! # Exactness
//!
//! The geometric skip is the exact law of the embedded no-op run (the same
//! inversion `SkipAheadUsd` and `BatchSimulator` use), and the effective
//! interaction is drawn from the exact conditional law (edge ∝ its active
//! orientation count, then a uniform active orientation of that edge), so
//! the induced chain on agent states is identical to driving
//! [`AgentSimulator`](crate::simulator::AgentSimulator) with a
//! [`GraphScheduler`](crate::scheduler::GraphScheduler) — verified by KS
//! tests in `tests/topology_equivalence.rs`.
//!
//! # Silence on graphs
//!
//! A configuration is silent for a graph-restricted scheduler iff `W = 0` —
//! a *weaker* condition than clique silence (two clashing opinions that are
//! not adjacent cannot interact). On connected graphs USD silence still
//! coincides with consensus/all-⊥, but on disconnected topologies the
//! dynamics can freeze in a mixed configuration. In the sparse phase
//! [`GraphSimulator::is_silent`] reports exactly `W == 0`; in the dense
//! phase it uses the (sufficient) count-level criterion, and a frozen
//! configuration that criterion misses is caught by the no-op-run trigger,
//! which escalates to the sparse phase and certifies `W = 0` — so every
//! driver loop terminates with the exact graph notion.

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::config::CountConfig;
use crate::graph::Graph;
use crate::protocol::Protocol;
use crate::simulator::sparse::{orient_event, SparseSkipper, SparseStep, SPARSE_TRIGGER_NOOPS};
use crate::simulator::{snapshot_tags, Simulator};
use crate::telemetry::timeline::EventHistograms;
use crate::telemetry::EngineTelemetry;
use sim_stats::rng::SimRng;

/// Exact active-edge simulator for a fixed interaction graph.
///
/// Memory is O(n + m); the dense phase costs O(1) per scheduled
/// interaction and the sparse phase O(d log m) per **effective**
/// interaction, where `d` is the degree of the two agents that changed.
/// See the module docs for the phase machinery and its exactness
/// argument.
///
/// Observation granularity
/// ([`advance_observed`](crate::Simulator::advance_observed)): **exact** —
/// both phases return at the first effective event (the dense phase stops
/// its literal stepping there, the sparse phase applies exactly one), so
/// observers see every effective event individually with the preceding
/// no-op run folded into the scheduled delta.
#[derive(Debug, Clone)]
pub struct GraphSimulator<P: Protocol> {
    protocol: P,
    /// The graph's edge list (unordered endpoint pairs).
    edges: Vec<(u32, u32)>,
    /// CSR adjacency offsets: vertex `v` owns `adj[offsets[v]..offsets[v+1]]`.
    offsets: Vec<u32>,
    /// CSR adjacency entries: `(neighbor, edge index)`.
    adj: Vec<(u32, u32)>,
    /// Dense state index per agent.
    states: Vec<u32>,
    /// Per-state counts, kept in sync with `states`.
    counts: Vec<u64>,
    /// Shared sparse-phase engine over per-edge active-orientation weights
    /// (0, 1, or 2). Materialized only in the sparse phase; `None` while
    /// the dense phase steps literally.
    sparse: Option<SparseSkipper>,
    /// Consecutive no-op draws seen by the dense phase (sparse trigger).
    noop_run: u32,
    k: usize,
    interactions: u64,
    effective_interactions: u64,
    /// Cached `transition_indices` for all ordered state pairs
    /// (`table[i * k + j]`).
    table: Vec<(u32, u32)>,
    /// Whether `(i, j)` is a no-op (`noop[i * k + j]`).
    noop: Vec<bool>,
    /// Engine telemetry: live counters here are `scheduled`/`effective`
    /// (mirroring the interaction clocks), `dense_steps`, `pair_draws`,
    /// `sparse_enters`/`sparse_exits`, the harvested skipper stats, and
    /// the dense/sparse spans.
    telemetry: EngineTelemetry,
    /// Per-event histograms (opt-in): dense no-op run lengths recorded
    /// here, sparse-phase fields merged in from each skipper at phase
    /// exits and boundary reads.
    hist: Option<Box<EventHistograms>>,
}

impl<P: Protocol> GraphSimulator<P> {
    /// Create from explicit per-agent states (dense indices). The graph
    /// must have at least one edge and as many vertices as there are
    /// states.
    pub fn new(protocol: P, graph: &Graph, states: Vec<usize>) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "agent count does not match graph vertex count"
        );
        assert!(graph.num_edges() > 0, "graphwise engine needs edges");
        let k = protocol.num_states();
        let mut table = Vec::with_capacity(k * k);
        let mut noop = Vec::with_capacity(k * k);
        for i in 0..k {
            for j in 0..k {
                let (a, b) = protocol.transition_indices(i, j);
                table.push((a as u32, b as u32));
                noop.push((a, b) == (i, j));
            }
        }
        let mut counts = vec![0u64; k];
        let states: Vec<u32> = states
            .into_iter()
            .map(|s| {
                assert!(s < k, "state index {s} out of range");
                counts[s] += 1;
                s as u32
            })
            .collect();

        let edges = graph.edges().to_vec();
        let (offsets, adj) = graph.csr_adjacency();

        GraphSimulator {
            protocol,
            edges,
            offsets,
            adj,
            states,
            counts,
            sparse: None,
            noop_run: 0,
            k,
            interactions: 0,
            effective_interactions: 0,
            table,
            noop,
            telemetry: EngineTelemetry::new(),
            hist: None,
        }
    }

    /// Create from a count configuration with a uniformly shuffled agent
    /// layout. On non-clique topologies the layout matters (states are not
    /// exchangeable across vertices), so a uniform random placement is the
    /// canonical initial law; a block layout would correlate states with
    /// the generator's vertex numbering.
    pub fn from_config_shuffled(
        protocol: P,
        graph: &Graph,
        config: &CountConfig,
        rng: &mut SimRng,
    ) -> Self {
        let states = shuffled_layout(config, rng);
        Self::new(protocol, graph, states)
    }

    /// Create from a count configuration with a block layout (agents
    /// `0..c₀` in state 0, the next `c₁` in state 1, …). Only appropriate
    /// when the layout is irrelevant — i.e. the complete graph; prefer
    /// [`GraphSimulator::from_config_shuffled`] for real topologies.
    pub fn from_config(protocol: P, graph: &Graph, config: &CountConfig) -> Self {
        let mut states = Vec::with_capacity(config.n() as usize);
        for (idx, &c) in config.counts().iter().enumerate() {
            states.extend(std::iter::repeat_n(idx, c as usize));
        }
        Self::new(protocol, graph, states)
    }

    /// The protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of agents.
    pub fn population(&self) -> usize {
        self.states.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The state index of one agent.
    pub fn state_of_agent(&self, v: usize) -> usize {
        self.states[v] as usize
    }

    /// Per-state counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Current count configuration (copies counts).
    pub fn config(&self) -> CountConfig {
        CountConfig::from_counts(self.counts.clone())
    }

    /// Total interactions simulated (including no-ops).
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Interactions that changed the configuration.
    pub fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    /// Total number of active orientations `W` (0 iff silent). O(1) in the
    /// sparse phase; scans the edges in the dense phase, where `W` is not
    /// maintained.
    pub fn active_weight(&self) -> u64 {
        match &self.sparse {
            Some(s) => s.total(),
            None => (0..self.edges.len()).map(|e| self.edge_weight(e)).sum(),
        }
    }

    /// Parallel time elapsed (= interactions / n).
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.states.len() as f64
    }

    /// Whether the configuration is silent *for this graph*: no scheduled
    /// interaction can change it (`W = 0`).
    ///
    /// Sparse phase: exact (`W == 0`). Dense phase: the count-level clique
    /// criterion, which is sufficient (clique silence implies graph
    /// silence) but can miss a frozen configuration on a *disconnected*
    /// graph; driver loops still terminate because the dense phase's
    /// no-op-run trigger escalates such configurations to the sparse phase
    /// (see the module docs).
    pub fn is_silent(&self) -> bool {
        match &self.sparse {
            Some(s) => s.total() == 0,
            None => self.protocol.is_silent(&self.counts),
        }
    }

    /// Current weight (active orientations) of edge `e` from its endpoint
    /// states.
    #[inline]
    fn edge_weight(&self, e: usize) -> u64 {
        let (a, b) = self.edges[e];
        let sa = self.states[a as usize] as usize;
        let sb = self.states[b as usize] as usize;
        (!self.noop[sa * self.k + sb]) as u64 + (!self.noop[sb * self.k + sa]) as u64
    }

    /// Verify the sparse skipper (if live) against per-edge weights
    /// recomputed from the states — the deferred-update invariants the
    /// property tests pin. O(m); `Ok` when the dense phase is active.
    #[doc(hidden)]
    pub fn validate_sparse_invariants(&self) -> Result<(), String> {
        match &self.sparse {
            None => Ok(()),
            Some(s) => {
                let truth: Vec<u64> = (0..self.edges.len()).map(|e| self.edge_weight(e)).collect();
                s.check_consistent(&truth)
            }
        }
    }

    /// Re-weight the incident edges of vertex `v` in the sparse skipper
    /// after its state changed from `old` (the state array already holds
    /// the new value). Edges whose weight is unchanged are filtered with
    /// pure transition-table math before the skipper is touched; changed
    /// ones report their new weight, and the tree update is deferred and
    /// coalesced (see [`SparseSkipper`]). Sparse phase only.
    fn refresh_incident(&mut self, v: usize, old: usize) {
        let t = self.states[v] as usize;
        let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
        let sparse = self
            .sparse
            .as_mut()
            .expect("sparse-phase refresh without a skipper");
        for idx in lo..hi {
            let (nb, e) = self.adj[idx];
            debug_assert_ne!(nb as usize, v, "self-loop");
            // The neighbor may be the interaction partner; the two
            // endpoints are flipped and refreshed one at a time, so `y`
            // and `old` always describe the edge's pre-refresh weight
            // exactly.
            let y = self.states[nb as usize] as usize;
            let was = (!self.noop[old * self.k + y]) as u64 + (!self.noop[y * self.k + old]) as u64;
            let now = (!self.noop[t * self.k + y]) as u64 + (!self.noop[y * self.k + t]) as u64;
            if was != now {
                sparse.set_weight(e as usize, now);
            }
        }
    }

    /// Apply `f` to the oriented pair `(i → j)`; returns whether any state
    /// changed (re-weighting the incident edges when the tree is live).
    fn apply_oriented(&mut self, i: usize, j: usize) -> bool {
        let (si, sj) = (self.states[i] as usize, self.states[j] as usize);
        if self.noop[si * self.k + sj] {
            return false;
        }
        let (ti, tj) = self.table[si * self.k + sj];
        self.counts[si] -= 1;
        self.counts[sj] -= 1;
        self.counts[ti as usize] += 1;
        self.counts[tj as usize] += 1;
        self.effective_interactions += 1;
        self.telemetry.effective += 1;
        if self.sparse.is_none() {
            self.states[i] = ti;
            self.states[j] = tj;
            return true;
        }
        // Refresh one endpoint at a time so each new weight is computed
        // against a consistent snapshot: flip i first (j still old),
        // refresh i's edges; then flip j and refresh. The shared edge
        // (i, j) is seen by both refreshes and settles on its final weight
        // with the second one.
        if ti as usize != si {
            self.states[i] = ti;
            self.refresh_incident(i, si);
        }
        if tj as usize != sj {
            self.states[j] = tj;
            self.refresh_incident(j, sj);
        }
        true
    }

    /// Enter the sparse phase: scan the graph once and hand the per-edge
    /// active-orientation weights to a fresh [`SparseSkipper`].
    fn enter_sparse(&mut self) {
        let weights: Vec<u64> = (0..self.edges.len()).map(|e| self.edge_weight(e)).collect();
        let mut skipper = SparseSkipper::new(&weights);
        skipper.set_histograms(self.hist.is_some());
        self.sparse = Some(skipper);
        self.noop_run = 0;
        self.telemetry.sparse_enters += 1;
    }

    /// Drop the sparse skipper (activity recovered), harvesting its
    /// telemetry first so no counters are lost with the phase.
    fn exit_sparse(&mut self) {
        if let Some(mut s) = self.sparse.take() {
            self.telemetry.sparse.absorb(s.take_stats());
            if let (Some(h), Some(sh)) = (&mut self.hist, s.histograms()) {
                h.merge(sh);
            }
            self.telemetry.sparse_exits += 1;
        }
        self.noop_run = 0;
    }

    /// Simulate exactly one scheduled interaction (uniform edge, uniform
    /// orientation — the literal [`GraphScheduler`] law); returns whether
    /// it changed the configuration.
    ///
    /// [`GraphScheduler`]: crate::scheduler::GraphScheduler
    pub fn step(&mut self, rng: &mut SimRng) -> bool {
        self.interactions += 1;
        self.telemetry.scheduled += 1;
        self.telemetry.dense_steps += 1;
        self.telemetry.pair_draws += 1;
        let (a, b) = self.edges[rng.index(self.edges.len())];
        let (i, j) = if rng.bernoulli(0.5) {
            (a as usize, b as usize)
        } else {
            (b as usize, a as usize)
        };
        self.apply_oriented(i, j)
    }

    /// One sparse-phase advancement: geometrically skip the no-op run
    /// preceding the next effective interaction (truncated at `max`) and
    /// simulate that interaction from the exact conditional law — edge
    /// ∝ active-orientation weight, then a uniform active orientation of
    /// the edge. Returns after **one** effective event (the engine's exact
    /// observation granularity); the skipper's Fenwick updates are still
    /// amortized because its sidecar persists across calls. Precondition:
    /// skipper live, `W > 0`, `max > 0`.
    fn sparse_advance(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        let sparse = self
            .sparse
            .as_mut()
            .expect("sparse advance without skipper");
        let (consumed, e) = match sparse.next_event(rng, max) {
            SparseStep::Horizon => {
                // The effective interaction lands beyond the horizon: the
                // first `max` interactions are conditionally all no-ops
                // (truncated geometric — still exact).
                self.interactions += max;
                self.telemetry.scheduled += max;
                return (max, false);
            }
            SparseStep::Event { consumed, edge } => {
                self.interactions += consumed;
                self.telemetry.scheduled += consumed;
                (consumed, edge)
            }
        };
        let (a, b) = self.edges[e];
        let sa = self.states[a as usize] as usize;
        let sb = self.states[b as usize] as usize;
        let (i, j) = orient_event(
            rng,
            a as usize,
            b as usize,
            !self.noop[sa * self.k + sb],
            !self.noop[sb * self.k + sa],
        );
        let changed = self.apply_oriented(i, j);
        debug_assert!(changed, "sampled active orientation was a no-op");
        self.sparse
            .as_mut()
            .expect("sparse advance without skipper")
            .end_event();
        (consumed, true)
    }

    /// Advance by at most `max` interactions using the cheapest exact
    /// mechanism for the current activity level (literal dense stepping or
    /// the sparse Fenwick skipper). Returns interactions advanced and
    /// whether the counts changed. On a certified-silent configuration the
    /// clock stops: the call returns without advancing (possibly `(0,
    /// false)`), and `is_silent()` is true.
    pub fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        let out = self.advance_changed_impl(rng, max);
        // Harvest the skipper's telemetry at every advancement boundary so
        // the engine's totals are current even while the sparse phase is
        // live (runs routinely *end* inside it).
        if let Some(s) = &mut self.sparse {
            self.telemetry.sparse.absorb(s.take_stats());
        }
        out
    }

    fn advance_changed_impl(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        if max == 0 {
            return (0, false);
        }
        let mut advanced = 0u64;
        loop {
            // Sparse phase: skip geometrically; fall back to dense when the
            // activity fraction has recovered past the hysteresis
            // threshold.
            if let Some(s) = &self.sparse {
                if s.total() == 0 {
                    // Silent: nothing can ever change. Stop the clock
                    // instead of charging the horizon, so stabilization
                    // times report when silence was *reached* — drivers
                    // treat a short advancement as termination and confirm
                    // via `is_silent`, which is exact here.
                    return (advanced, false);
                }
                if s.should_exit_to_dense() {
                    self.exit_sparse();
                } else {
                    let t0 = self.telemetry.clock.start();
                    let (leapt, changed) = self.sparse_advance(rng, max - advanced);
                    self.telemetry.spans.sparse_ns += self.telemetry.clock.elapsed_ns(t0);
                    return (advanced + leapt, changed);
                }
            }
            // Dense phase: literal scheduled draws, O(1) each. A long
            // enough run of consecutive no-ops certifies a collapsed
            // activity fraction (or silence) and escalates to the sparse
            // skipper on the next loop turn.
            let t0 = self.telemetry.clock.start();
            let mut effective_at: Option<u64> = None;
            while advanced < max {
                advanced += 1;
                if self.step(rng) {
                    if let Some(h) = &mut self.hist {
                        // The literally-counted dense no-op run before this
                        // effective event — the same quantity the sparse
                        // phase samples geometrically.
                        h.skip_len.add_u64(self.noop_run as u64);
                    }
                    self.noop_run = 0;
                    effective_at = Some(advanced);
                    break;
                }
                self.noop_run += 1;
                if self.noop_run >= SPARSE_TRIGGER_NOOPS {
                    self.enter_sparse();
                    break;
                }
            }
            self.telemetry.spans.dense_ns += self.telemetry.clock.elapsed_ns(t0);
            if let Some(done) = effective_at {
                return (done, true);
            }
            if advanced >= max {
                return (max, false);
            }
        }
    }

    /// Run until `stop` returns true on the counts, graph silence, or
    /// `budget` interactions; returns interactions simulated by this call.
    pub fn run(
        &mut self,
        rng: &mut SimRng,
        budget: u64,
        mut stop: impl FnMut(&Self) -> bool,
    ) -> u64 {
        let start = self.interactions;
        if stop(self) || self.is_silent() {
            return 0;
        }
        loop {
            let done = self.interactions - start;
            if done >= budget {
                return done;
            }
            let (advanced, changed) = self.advance_changed(rng, budget - done);
            if advanced == 0 {
                return done;
            }
            if changed && (stop(self) || self.is_silent()) {
                return self.interactions - start;
            }
        }
    }
}

/// Block layout for `config` shuffled uniformly — the canonical random
/// placement of a count configuration onto graph vertices.
pub fn shuffled_layout(config: &CountConfig, rng: &mut SimRng) -> Vec<usize> {
    let mut states = Vec::with_capacity(config.n() as usize);
    for (idx, &c) in config.counts().iter().enumerate() {
        states.extend(std::iter::repeat_n(idx, c as usize));
    }
    rng.shuffle(&mut states);
    states
}

impl<P: Protocol> Simulator for GraphSimulator<P> {
    fn population(&self) -> u64 {
        self.states.len() as u64
    }

    fn num_states(&self) -> usize {
        self.k
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    fn step(&mut self, rng: &mut SimRng) -> bool {
        GraphSimulator::step(self, rng)
    }

    fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        GraphSimulator::advance_changed(self, rng, max)
    }

    fn is_silent(&self) -> bool {
        GraphSimulator::is_silent(self)
    }

    fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    fn set_span_timing(&mut self, enabled: bool) {
        self.telemetry.clock.enabled = enabled;
    }

    fn set_histograms(&mut self, enabled: bool) {
        self.hist = if enabled {
            Some(Box::new(EventHistograms::new()))
        } else {
            None
        };
        if let Some(s) = &mut self.sparse {
            s.set_histograms(enabled);
        }
    }

    fn histograms(&self) -> Option<EventHistograms> {
        let mut h = self.hist.as_deref()?.clone();
        if let Some(sh) = self.sparse.as_ref().and_then(|s| s.histograms()) {
            h.merge(sh);
        }
        Some(h)
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) -> Result<(), CheckpointError> {
        // The graph structure (edges, CSR adjacency) and transition tables
        // are constructor-derived; the mutable state is the agent states,
        // the clocks, the dense no-op run, and the live skipper (whose
        // Fenwick tree restores from the states plus the sidecar).
        w.put_u8(snapshot_tags::GRAPH);
        snapshot_tags::write_config(w, self.states.len() as u64, self.k);
        w.put_u32_slice(&self.states);
        w.put_u64(self.interactions);
        w.put_u64(self.effective_interactions);
        w.put_u32(self.noop_run);
        self.telemetry.write_snapshot(w);
        match &self.hist {
            Some(h) => {
                w.put_bool(true);
                h.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        match &self.sparse {
            Some(s) => {
                w.put_bool(true);
                s.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        snapshot_tags::expect(r, snapshot_tags::GRAPH, "graph")?;
        snapshot_tags::expect_config(r, self.states.len() as u64, self.k)?;
        let states = r.get_u32_vec()?;
        if states.len() != self.states.len() {
            return Err(CheckpointError::Corrupt(format!(
                "graph snapshot has {} agents (engine has {})",
                states.len(),
                self.states.len()
            )));
        }
        let mut counts = vec![0u64; self.k];
        for &s in &states {
            if (s as usize) >= self.k {
                return Err(CheckpointError::Corrupt(format!(
                    "agent state index {s} out of range ({} states)",
                    self.k
                )));
            }
            counts[s as usize] += 1;
        }
        let interactions = r.get_u64()?;
        let effective_interactions = r.get_u64()?;
        let noop_run = r.get_u32()?;
        let telemetry = EngineTelemetry::read_snapshot(r)?;
        let hist = if r.get_bool()? {
            Some(Box::new(EventHistograms::read_snapshot(r)?))
        } else {
            None
        };
        // The skipper validates itself against ground-truth weights
        // recomputed from the restored states, so install those first.
        self.states = states;
        self.counts = counts;
        let sparse = if r.get_bool()? {
            let truth: Vec<u64> = (0..self.edges.len()).map(|e| self.edge_weight(e)).collect();
            Some(SparseSkipper::read_snapshot(&truth, r)?)
        } else {
            None
        };
        self.interactions = interactions;
        self.effective_interactions = effective_interactions;
        self.noop_run = noop_run;
        self.telemetry = telemetry;
        self.hist = hist;
        self.sparse = sparse;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OneWayEpidemic;
    use crate::scheduler::GraphScheduler;

    fn epidemic_on(graph: &Graph, infected: usize) -> GraphSimulator<OneWayEpidemic> {
        let mut states = vec![1usize; graph.n()];
        for s in states.iter_mut().take(infected) {
            *s = 0;
        }
        GraphSimulator::new(OneWayEpidemic, graph, states)
    }

    #[test]
    fn initial_active_weight_counts_boundary_orientations() {
        // Path 0-1-2-3 with agent 0 infected: only edge (0,1) is active,
        // in both orientations (epidemic is symmetric in effect).
        let g = Graph::path(4);
        let sim = epidemic_on(&g, 1);
        assert_eq!(sim.active_weight(), 2);
        assert!(!sim.is_silent());
    }

    #[test]
    fn epidemic_on_cycle_completes_and_counts_events() {
        let g = Graph::cycle(50);
        let mut sim = epidemic_on(&g, 1);
        let mut rng = SimRng::new(1);
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
        }
        assert_eq!(sim.counts(), &[50, 0]);
        // One infection per susceptible agent.
        assert_eq!(sim.effective_interactions(), 49);
        assert_eq!(sim.active_weight(), 0);
    }

    #[test]
    fn step_matches_scheduler_law_on_interaction_counts() {
        // Driving with single steps must give the same infection law as an
        // AgentSimulator over the same GraphScheduler (here: compare mean
        // completion interactions on a small cycle).
        let reps = 200u64;
        let mut graphwise_mean = 0.0;
        let mut agentwise_mean = 0.0;
        for seed in 0..reps {
            let g = Graph::cycle(16);
            let mut sim = epidemic_on(&g, 1);
            let mut rng = SimRng::new(seed);
            while !sim.is_silent() {
                sim.step(&mut rng);
            }
            graphwise_mean += sim.interactions() as f64;

            let g = Graph::cycle(16);
            let mut states = vec![1usize; 16];
            states[0] = 0;
            let mut reference = crate::simulator::AgentSimulator::new(
                OneWayEpidemic,
                GraphScheduler::new(g),
                states,
            );
            let mut rng = SimRng::new(seed + 10_000);
            while reference.counts()[0] < 16 {
                crate::simulator::Simulator::step(&mut reference, &mut rng);
            }
            agentwise_mean += reference.interactions() as f64;
        }
        graphwise_mean /= reps as f64;
        agentwise_mean /= reps as f64;
        let rel = (graphwise_mean - agentwise_mean).abs() / agentwise_mean;
        assert!(
            rel < 0.06,
            "graphwise {graphwise_mean} vs agentwise {agentwise_mean}"
        );
    }

    #[test]
    fn skip_clock_matches_single_step_clock_in_distribution() {
        // The geometric skip must preserve the *total interaction* clock:
        // mean completion interactions via advance() equals via step().
        let reps = 300u64;
        let mut skip_mean = 0.0;
        let mut step_mean = 0.0;
        for seed in 0..reps {
            let g = Graph::cycle(24);
            let mut sim = epidemic_on(&g, 1);
            let mut rng = SimRng::new(seed);
            while !sim.is_silent() {
                sim.advance_changed(&mut rng, u64::MAX / 2);
            }
            skip_mean += sim.interactions() as f64;

            let g = Graph::cycle(24);
            let mut sim = epidemic_on(&g, 1);
            let mut rng = SimRng::new(seed + 777_777);
            while !sim.is_silent() {
                sim.step(&mut rng);
            }
            step_mean += sim.interactions() as f64;
        }
        skip_mean /= reps as f64;
        step_mean /= reps as f64;
        let rel = (skip_mean - step_mean).abs() / step_mean;
        assert!(rel < 0.06, "skip {skip_mean} vs step {step_mean}");
    }

    #[test]
    fn advance_respects_max_and_truncates_exactly() {
        let g = Graph::cycle(1000);
        let mut sim = epidemic_on(&g, 1);
        let mut rng = SimRng::new(3);
        for max in [1u64, 7, 100, 10_000] {
            let before = sim.interactions();
            let (advanced, _) = sim.advance_changed(&mut rng, max);
            assert!(advanced >= 1 && advanced <= max, "advanced {advanced}");
            assert_eq!(sim.interactions() - before, advanced);
        }
    }

    #[test]
    fn sparse_phase_invariants_hold_across_advancements() {
        // A creeping epidemic frontier on a large cycle keeps the run in
        // the sparse skipper; the deferred-update invariants (exact
        // incremental total, sidecar-tracked weights, clean tree entries)
        // must hold at every advancement boundary.
        let g = Graph::cycle(1_024);
        let mut sim = epidemic_on(&g, 1);
        let mut rng = SimRng::new(13);
        let mut checked = 0u32;
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
            sim.validate_sparse_invariants().unwrap();
            checked += 1;
        }
        // The graphwise engine returns per effective event, so nearly
        // every one of the 1023 infections is a checked boundary.
        assert!(checked > 500, "only {checked} boundaries checked");
    }

    #[test]
    fn telemetry_mirrors_clocks_and_harvests_sparse_phase() {
        // A creeping frontier spends the whole run inside the sparse
        // skipper; the engine's telemetry must mirror the interaction
        // clocks exactly and must have harvested the skipper's counters
        // even though the run *ends* while the sparse phase is live.
        let g = Graph::cycle(1_024);
        let mut sim = epidemic_on(&g, 1);
        let mut rng = SimRng::new(21);
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
        }
        let t = Simulator::telemetry(&sim);
        assert_eq!(t.scheduled, sim.interactions());
        assert_eq!(t.effective, sim.effective_interactions());
        assert!(t.sparse_enters >= 1, "never escalated to sparse");
        assert!(t.sparse.events > 0, "skipper stats were not harvested");
        assert_eq!(t.sparse.event_draws, t.sparse.events);
        assert!(t.sparse.updates_deferred + t.sparse.updates_immediate > 0);
        // Span timing is off by default: no clock reads, zero spans.
        assert_eq!(t.spans, crate::telemetry::SpanSet::new());
    }

    #[test]
    fn silent_configuration_stops_the_clock() {
        let g = Graph::cycle(10);
        let mut sim = epidemic_on(&g, 10); // everyone infected: silent
        assert!(sim.is_silent());
        let mut rng = SimRng::new(4);
        // The dense phase draws genuine (no-op) scheduled interactions
        // until the trigger certifies silence; after that the clock stops
        // for good, so repeated calls cannot inflate stabilization times.
        let (first, changed) = sim.advance_changed(&mut rng, 5_000);
        assert!(!changed);
        assert!(first <= 5_000);
        let clock = sim.interactions();
        let (second, changed) = sim.advance_changed(&mut rng, 5_000);
        assert_eq!((second, changed), (0, false));
        assert_eq!(sim.interactions(), clock);
        assert_eq!(sim.effective_interactions(), 0);
    }

    #[test]
    fn disconnected_graph_freezes_with_mixed_counts() {
        // Two components, infection only in one: the run must go silent
        // with susceptibles remaining — the graph notion of silence.
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let mut states = vec![1usize; 4];
        states[0] = 0;
        let mut sim = GraphSimulator::new(OneWayEpidemic, &g, states);
        let mut rng = SimRng::new(5);
        let mut guard = 0;
        while !sim.is_silent() {
            sim.advance_changed(&mut rng, u64::MAX / 2);
            guard += 1;
            assert!(guard < 100);
        }
        assert_eq!(sim.counts(), &[2, 2]);
    }

    #[test]
    fn trait_object_usable() {
        let g = Graph::cycle(100);
        let mut sim: Box<dyn Simulator> = Box::new(epidemic_on(&g, 5));
        let mut rng = SimRng::new(6);
        let ran = sim.run_until(&mut rng, u64::MAX / 2, &mut |_| false);
        assert!(ran > 0);
        assert!(sim.is_silent());
        assert_eq!(sim.counts(), &[100, 0]);
    }

    #[test]
    fn shuffled_layout_preserves_counts() {
        let cfg = CountConfig::from_counts(vec![10, 30, 60]);
        let mut rng = SimRng::new(7);
        let layout = shuffled_layout(&cfg, &mut rng);
        assert_eq!(layout.len(), 100);
        let mut counts = [0u64; 3];
        for &s in &layout {
            counts[s] += 1;
        }
        assert_eq!(&counts, &[10, 30, 60]);
        // And it actually shuffles (block layout is astronomically
        // unlikely to survive).
        assert_ne!(layout, shuffled_layout(&cfg, &mut SimRng::new(8)));
    }

    #[test]
    #[should_panic(expected = "needs edges")]
    fn empty_graph_rejected() {
        let g = Graph::from_edges(3, vec![]);
        GraphSimulator::new(OneWayEpidemic, &g, vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "vertex count")]
    fn state_count_mismatch_rejected() {
        let g = Graph::cycle(3);
        GraphSimulator::new(OneWayEpidemic, &g, vec![0, 1]);
    }
}
