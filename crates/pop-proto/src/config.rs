//! Count-based configurations.
//!
//! Because agents are anonymous, a configuration of a population protocol is
//! fully described by how many agents are in each state — the paper's
//! x = (x₁, …, x_k, u) vector is exactly such a count configuration. The
//! [`CountConfig`] type stores counts indexed by the protocol's dense state
//! index and enforces conservation of the population size.

use crate::protocol::Protocol;

/// A population configuration as a vector of per-state counts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CountConfig {
    counts: Vec<u64>,
    n: u64,
}

impl CountConfig {
    /// Build from per-state counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let n = counts.iter().sum();
        CountConfig { counts, n }
    }

    /// A configuration with all `n` agents in state `index` out of
    /// `num_states` states.
    pub fn uniform(num_states: usize, index: usize, n: u64) -> Self {
        assert!(index < num_states, "state index out of range");
        let mut counts = vec![0; num_states];
        counts[index] = n;
        CountConfig { counts, n }
    }

    /// Population size `n`.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Count of agents in state `index`.
    #[inline]
    pub fn count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// All counts.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of states tracked.
    pub fn num_states(&self) -> usize {
        self.counts.len()
    }

    /// Apply one ordered interaction `(initiator_state, responder_state)`
    /// under `protocol`, updating counts. Panics (debug) if the named states
    /// are not actually present.
    ///
    /// Returns `true` if the interaction changed the configuration.
    pub fn apply_interaction<P: Protocol>(
        &mut self,
        protocol: &P,
        initiator: usize,
        responder: usize,
    ) -> bool {
        debug_assert!(self.counts[initiator] >= 1, "initiator state not present");
        debug_assert!(
            if initiator == responder {
                self.counts[responder] >= 2
            } else {
                self.counts[responder] >= 1
            },
            "responder state not present"
        );
        let (a, b) = protocol.transition_indices(initiator, responder);
        if (a, b) == (initiator, responder) {
            return false;
        }
        self.counts[initiator] -= 1;
        self.counts[responder] -= 1;
        self.counts[a] += 1;
        self.counts[b] += 1;
        true
    }

    /// The number of distinct states with at least one agent.
    pub fn support_size(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Whether all agents share a single state; returns its index if so.
    pub fn consensus_state(&self) -> Option<usize> {
        let mut found = None;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                if c == self.n {
                    return Some(i);
                }
                if found.is_some() {
                    return None;
                }
                found = Some(i);
            }
        }
        found.filter(|_| self.n > 0)
    }

    /// Tally outputs under the protocol's output map γ: returns
    /// `(output, count)` pairs for outputs with positive count, in the order
    /// the outputs are first encountered over state indices.
    pub fn output_tally<P: Protocol>(&self, protocol: &P) -> Vec<(P::Output, u64)> {
        let mut tally: Vec<(P::Output, u64)> = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let out = protocol.output(protocol.state_of(i));
            match tally.iter_mut().find(|(o, _)| *o == out) {
                Some((_, acc)) => *acc += c,
                None => tally.push((out, c)),
            }
        }
        tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OneWayEpidemic;

    #[test]
    fn from_counts_sums() {
        let c = CountConfig::from_counts(vec![3, 4, 5]);
        assert_eq!(c.n(), 12);
        assert_eq!(c.count(1), 4);
        assert_eq!(c.num_states(), 3);
    }

    #[test]
    fn uniform_config() {
        let c = CountConfig::uniform(4, 2, 100);
        assert_eq!(c.counts(), &[0, 0, 100, 0]);
        assert_eq!(c.consensus_state(), Some(2));
    }

    #[test]
    fn apply_interaction_conserves_population() {
        let p = OneWayEpidemic;
        let mut c = CountConfig::from_counts(vec![1, 9]);
        // infected (0) meets susceptible (1): both infected afterwards.
        assert!(c.apply_interaction(&p, 0, 1));
        assert_eq!(c.counts(), &[2, 8]);
        assert_eq!(c.n(), 10);
        // noop: two susceptible agents.
        assert!(!c.apply_interaction(&p, 1, 1));
        assert_eq!(c.counts(), &[2, 8]);
    }

    #[test]
    fn support_and_consensus() {
        let c = CountConfig::from_counts(vec![0, 10, 0]);
        assert_eq!(c.support_size(), 1);
        assert_eq!(c.consensus_state(), Some(1));
        let d = CountConfig::from_counts(vec![1, 9, 0]);
        assert_eq!(d.support_size(), 2);
        assert_eq!(d.consensus_state(), None);
    }

    #[test]
    fn output_tally_groups_states() {
        let p = OneWayEpidemic;
        let c = CountConfig::from_counts(vec![3, 7]);
        let tally = c.output_tally(&p);
        assert_eq!(tally, vec![(true, 3), (false, 7)]);
    }

    #[test]
    fn empty_population_has_no_consensus() {
        let c = CountConfig::from_counts(vec![0, 0]);
        assert_eq!(c.consensus_state(), None);
    }
}
