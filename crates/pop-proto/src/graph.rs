//! Interaction graphs for the general population-protocol model.
//!
//! The paper's results are for the clique (any two agents may interact), but
//! Angluin et al.'s original model restricts interactions to the edges of a
//! graph; we provide the standard topologies so the substrate covers the
//! general model and the experiment suite can contrast clique behaviour with
//! restricted topologies.

use sim_stats::rng::SimRng;

/// An undirected interaction graph on `n` vertices, stored as an edge list.
///
/// The clique is deliberately *not* materialized as an edge list (that would
/// be Θ(n²) memory); use [`crate::scheduler::CliqueScheduler`] for the
/// paper's model instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Build from an explicit edge list. Self-loops and out-of-range
    /// endpoints are rejected; duplicate edges are kept (they bias the
    /// scheduler toward that pair, which callers may intend).
    pub fn from_edges(n: usize, edges: Vec<(u32, u32)>) -> Self {
        for &(a, b) in &edges {
            assert!(a != b, "self-loop ({a},{b})");
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range for n={n}"
            );
        }
        Graph { n, edges }
    }

    /// Cycle C_n (ring). Requires n ≥ 3.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycle needs at least 3 vertices");
        let edges = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32)).collect();
        Graph { n, edges }
    }

    /// Path P_n. Requires n ≥ 2.
    pub fn path(n: usize) -> Self {
        assert!(n >= 2, "path needs at least 2 vertices");
        let edges = (0..n - 1).map(|i| (i as u32, (i + 1) as u32)).collect();
        Graph { n, edges }
    }

    /// Star K_{1,n−1} with vertex 0 at the center. Requires n ≥ 2.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "star needs at least 2 vertices");
        let edges = (1..n).map(|i| (0u32, i as u32)).collect();
        Graph { n, edges }
    }

    /// rows × cols grid with 4-neighbour connectivity.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows * cols >= 2, "grid needs at least 2 vertices");
        let idx = |r: usize, c: usize| (r * cols + c) as u32;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Graph {
            n: rows * cols,
            edges,
        }
    }

    /// Erdős–Rényi G(n, p): each of the C(n,2) edges present independently
    /// with probability `p`.
    pub fn erdos_renyi(n: usize, p: f64, rng: &mut SimRng) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.bernoulli(p) {
                    edges.push((a as u32, b as u32));
                }
            }
        }
        Graph { n, edges }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Compressed-sparse-row adjacency: returns `(offsets, entries)` where
    /// vertex `v` owns `entries[offsets[v]..offsets[v + 1]]`, each entry a
    /// `(neighbor, edge index)` pair. The simulation engines
    /// ([`GraphSimulator`](crate::simulator::GraphSimulator),
    /// [`BatchGraphSimulator`](crate::simulator::BatchGraphSimulator)) build
    /// this once at construction to re-weight the ≤ d edges incident to a
    /// changed agent without scanning the edge list.
    pub fn csr_adjacency(&self) -> (Vec<u32>, Vec<(u32, u32)>) {
        let n = self.n;
        let mut offsets = vec![0u32; n + 1];
        for &(a, b) in &self.edges {
            offsets[a as usize + 1] += 1;
            offsets[b as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![(0u32, 0u32); 2 * self.edges.len()];
        for (e, &(a, b)) in self.edges.iter().enumerate() {
            adj[cursor[a as usize] as usize] = (b, e as u32);
            cursor[a as usize] += 1;
            adj[cursor[b as usize] as usize] = (a, e as u32);
            cursor[b as usize] += 1;
        }
        (offsets, adj)
    }

    /// Per-vertex degrees.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for &(a, b) in &self.edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        deg
    }

    /// BFS connectivity check. The empty and single-vertex graphs count as
    /// connected.
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        let mut visited = 1usize;
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    visited += 1;
                    queue.push_back(w);
                }
            }
        }
        visited == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_structure() {
        let g = Graph::cycle(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.num_edges(), 5);
        assert!(g.degrees().iter().all(|&d| d == 2));
        assert!(g.is_connected());
    }

    #[test]
    fn path_structure() {
        let g = Graph::path(4);
        assert_eq!(g.num_edges(), 3);
        let deg = g.degrees();
        assert_eq!(deg[0], 1);
        assert_eq!(deg[3], 1);
        assert_eq!(deg[1], 2);
        assert!(g.is_connected());
    }

    #[test]
    fn star_structure() {
        let g = Graph::star(6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degrees()[0], 5);
        assert!(g.degrees()[1..].iter().all(|&d| d == 1));
        assert!(g.is_connected());
    }

    #[test]
    fn grid_structure() {
        let g = Graph::grid(3, 4);
        assert_eq!(g.n(), 12);
        // Edge count: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
        assert_eq!(g.num_edges(), 17);
        assert!(g.is_connected());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SimRng::new(8);
        let empty = Graph::erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        assert!(!empty.is_connected());
        let full = Graph::erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 45);
        assert!(full.is_connected());
    }

    #[test]
    fn erdos_renyi_edge_count_concentrates() {
        let mut rng = SimRng::new(9);
        let g = Graph::erdos_renyi(100, 0.3, &mut rng);
        let expect = 0.3 * 4950.0;
        assert!(
            (g.num_edges() as f64 - expect).abs() < 160.0,
            "edges {}",
            g.num_edges()
        );
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Graph::from_edges(3, vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        Graph::from_edges(3, vec![(0, 3)]);
    }
}
