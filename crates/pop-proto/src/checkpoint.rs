//! Versioned, checksummed snapshot format with crash-safe persistence.
//!
//! A checkpoint is a byte buffer with a fixed 16-byte header:
//!
//! | offset | size | field                                        |
//! |--------|------|----------------------------------------------|
//! | 0      | 8    | magic `"USDCKPT1"`                           |
//! | 8      | 4    | format version (little-endian u32, currently 1) |
//! | 12     | 4    | CRC-32 (IEEE) of the body (little-endian)    |
//! | 16     | …    | body                                         |
//!
//! The body is produced by [`SnapshotWriter`] and consumed by
//! [`SnapshotReader`] — a flat little-endian encoding with length-prefixed
//! sequences and no self-description beyond what each engine writes
//! (engines prefix their section with a tag plus the `(n, k)` configuration
//! echo and validate it on restore). [`seal`] attaches the header,
//! [`open`] validates it; any corruption — bit flips, truncation, a
//! partially written file — fails the CRC or a bounds check and surfaces
//! as a [`CheckpointError`], never a panic and never silently wrong state.
//!
//! Persistence is crash-safe: [`persist`] writes to a sibling `.tmp` file,
//! fsyncs it, rotates any existing checkpoint to `.prev`, and atomically
//! renames the temp file into place, so at every instant either the old or
//! the new checkpoint is intact on disk. [`load_chain`] implements the
//! fallback: it tries the primary path first and falls back to `.prev`
//! when the primary is missing or corrupt.
//!
//! [`FaultPlan`] is a test-only fault-injection hook threaded through
//! [`persist_with`]: it can turn the Nth file operation into an I/O error
//! or abort the whole process, which is how the fault harness proves the
//! temp-file/rename discipline end-to-end.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes identifying a checkpoint file (format name + major version).
pub const MAGIC: [u8; 8] = *b"USDCKPT1";

/// Current checkpoint format version, stored in the header.
pub const VERSION: u32 = 1;

/// Size in bytes of the fixed checkpoint header ([`MAGIC`] + version + CRC).
pub const HEADER_LEN: usize = 16;

/// Everything that can go wrong producing, parsing, or persisting a
/// checkpoint. Loading never panics: all corruption modes map here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer ended before a read completed (truncated file).
    Truncated,
    /// The file does not start with the checkpoint magic bytes.
    BadMagic,
    /// The header version is one this build cannot read.
    BadVersion(u32),
    /// The body does not match the header checksum (bit rot, partial write).
    BadChecksum {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum computed over the body actually read.
        actual: u32,
    },
    /// The body decoded structurally but fails a semantic validity check
    /// (configuration mismatch, inconsistent sidecar, invalid RNG state…).
    Corrupt(String),
    /// The simulator backend does not implement snapshot/restore.
    Unsupported,
    /// An underlying file operation failed.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {VERSION})")
            }
            CheckpointError::BadChecksum { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch (header {expected:#010x}, body {actual:#010x})"
            ),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Unsupported => {
                write!(
                    f,
                    "this simulator backend does not support snapshot/restore"
                )
            }
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of a byte slice — the checksum stored in the header.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

/// Append-only encoder for checkpoint bodies: flat little-endian scalars
/// plus length-prefixed sequences. Infallible — encoding only grows a
/// `Vec<u8>`.
#[derive(Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        SnapshotWriter { buf: Vec::new() }
    }

    /// Consume the writer and return the encoded body.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64 by exact bit pattern (round-trips NaN payloads too).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes with a u64 length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a UTF-8 string with a u64 length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append a u32 slice with a u64 length prefix.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Append a u64 slice with a u64 length prefix.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }
}

/// Cursor-based decoder over a checkpoint body. Every read is
/// bounds-checked and returns [`CheckpointError::Truncated`] instead of
/// panicking when the buffer runs out.
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Reader over an already-validated body (see [`open`]).
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0/1 is corruption.
    pub fn get_bool(&mut self) -> Result<bool, CheckpointError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Read a little-endian i64.
    pub fn get_i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(self.get_u64()? as i64)
    }

    /// Read an f64 stored by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    fn get_len(&mut self) -> Result<usize, CheckpointError> {
        let n = self.get_u64()?;
        usize::try_from(n).map_err(|_| CheckpointError::Corrupt(format!("length {n} overflows")))
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, CheckpointError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Corrupt("invalid UTF-8 string".into()))
    }

    /// Read a length-prefixed u32 vector.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, CheckpointError> {
        let n = self.get_len()?;
        if self.remaining() < n.saturating_mul(4) {
            return Err(CheckpointError::Truncated);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_u32()?);
        }
        Ok(v)
    }

    /// Read a length-prefixed u64 vector.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let n = self.get_len()?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(CheckpointError::Truncated);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_u64()?);
        }
        Ok(v)
    }

    /// Assert the body has been fully consumed; trailing bytes mean the
    /// reader and writer disagree about the schema.
    pub fn expect_end(&self) -> Result<(), CheckpointError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Seal / open
// ---------------------------------------------------------------------------

/// Attach the versioned, checksummed header to a body, producing the full
/// checkpoint file contents.
pub fn seal(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Validate a sealed checkpoint's magic, version, and CRC, returning the
/// body slice. All corruption modes return `Err`; nothing panics.
pub fn open(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let expected = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let body = &bytes[HEADER_LEN..];
    let actual = crc32(body);
    if expected != actual {
        return Err(CheckpointError::BadChecksum { expected, actual });
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// Crash-safe persistence + fallback chain
// ---------------------------------------------------------------------------

/// Path of the rotated previous checkpoint for `path` (`<path>.prev`).
pub fn prev_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".prev");
    PathBuf::from(os)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Test-only fault-injection plan for the persistence path.
///
/// Threaded through [`persist_with`]; counts the file operations the
/// persist sequence performs (create, write, fsync, rotate, rename) and
/// either fails the Nth one with an I/O error or aborts the whole process
/// at that point, simulating a crash mid-persist. [`FaultPlan::none`]
/// (the production value) never fires.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fire when the running op counter reaches this value (1-based).
    trigger: Option<u64>,
    /// Abort the process instead of returning an I/O error.
    kill: bool,
    ops: u64,
}

impl FaultPlan {
    /// A plan that never injects a fault (production behavior).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Inject an I/O error on the `n`th file operation (1-based).
    pub fn fail_on_op(n: u64) -> Self {
        FaultPlan {
            trigger: Some(n),
            kill: false,
            ops: 0,
        }
    }

    /// Abort the process (simulated SIGKILL) on the `n`th file operation.
    pub fn kill_on_op(n: u64) -> Self {
        FaultPlan {
            trigger: Some(n),
            kill: true,
            ops: 0,
        }
    }

    /// Number of file operations observed so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops
    }

    fn tick(&mut self) -> Result<(), CheckpointError> {
        self.ops += 1;
        if self.trigger == Some(self.ops) {
            if self.kill {
                std::process::abort();
            }
            return Err(CheckpointError::Io(format!(
                "injected fault at file op {}",
                self.ops
            )));
        }
        Ok(())
    }
}

/// Crash-safe write of sealed checkpoint bytes to `path`:
/// write `<path>.tmp`, fsync, rotate an existing `path` to `<path>.prev`,
/// then atomically rename the temp file into place. At every instant
/// either the previous or the new checkpoint is intact on disk.
pub fn persist(path: &Path, sealed: &[u8]) -> Result<(), CheckpointError> {
    persist_with(path, sealed, &mut FaultPlan::none())
}

/// [`persist`] with a fault-injection hook — identical behavior under
/// [`FaultPlan::none`]. Each fallible file operation ticks the plan first,
/// so tests can fail or kill the process at any point in the sequence.
pub fn persist_with(
    path: &Path,
    sealed: &[u8],
    faults: &mut FaultPlan,
) -> Result<(), CheckpointError> {
    let tmp = tmp_path(path);
    {
        faults.tick()?;
        let mut f = fs::File::create(&tmp)?;
        faults.tick()?;
        f.write_all(sealed)?;
        faults.tick()?;
        f.sync_all()?;
    }
    if path.exists() {
        faults.tick()?;
        fs::rename(path, prev_path(path))?;
    }
    faults.tick()?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Load and validate a checkpoint body, falling back along the chain:
/// try `path` first; if it is missing or corrupt, try `<path>.prev`.
/// Returns the validated body plus the path it actually came from, or the
/// primary's error (with the fallback's error appended) when both fail.
pub fn load_chain(path: &Path) -> Result<(Vec<u8>, PathBuf), CheckpointError> {
    let primary = load_one(path);
    match primary {
        Ok(body) => Ok((body, path.to_path_buf())),
        Err(primary_err) => {
            let prev = prev_path(path);
            match load_one(&prev) {
                Ok(body) => Ok((body, prev)),
                Err(prev_err) => Err(CheckpointError::Corrupt(format!(
                    "{}: {primary_err}; fallback {}: {prev_err}",
                    path.display(),
                    prev.display()
                ))),
            }
        }
    }
}

/// Load and validate a single checkpoint file, returning its body.
pub fn load_one(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let bytes = fs::read(path)?;
    open(&bytes).map(<[u8]>::to_vec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(-0.125);
        w.put_str("cycle:1024");
        w.put_u32_slice(&[1, 2, 3]);
        w.put_u64_slice(&[u64::MAX, 0]);
        let body = w.into_bytes();

        let mut r = SnapshotReader::new(&body);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert_eq!(r.get_string().unwrap(), "cycle:1024");
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![u64::MAX, 0]);
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut w = SnapshotWriter::new();
        w.put_u64(1);
        let body = w.into_bytes();
        let mut r = SnapshotReader::new(&body[..7]);
        assert_eq!(r.get_u64(), Err(CheckpointError::Truncated));
    }

    #[test]
    fn seal_open_round_trip_and_corruption() {
        let body = b"some engine payload".to_vec();
        let sealed = seal(&body);
        assert_eq!(open(&sealed).unwrap(), &body[..]);

        // Every single-bit flip anywhere in the file is caught.
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert!(open(&bad).is_err(), "flip at byte {byte} bit {bit}");
            }
        }
        // Every truncation is caught.
        for len in 0..sealed.len() {
            assert!(open(&sealed[..len]).is_err(), "truncate to {len}");
        }
    }

    #[test]
    fn persist_rotates_and_chain_falls_back() {
        let dir = std::env::temp_dir().join(format!("usd_ckpt_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");

        let first = seal(b"first");
        let second = seal(b"second");
        persist(&path, &first).unwrap();
        assert_eq!(load_chain(&path).unwrap().0, b"first");
        persist(&path, &second).unwrap();
        let (body, from) = load_chain(&path).unwrap();
        assert_eq!(body, b"second");
        assert_eq!(from, path);

        // Corrupt the primary: chain falls back to the rotated previous.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (body, from) = load_chain(&path).unwrap();
        assert_eq!(body, b"first");
        assert_eq!(from, prev_path(&path));

        // Corrupt both: clean error naming both paths.
        fs::write(prev_path(&path), b"garbage").unwrap();
        assert!(load_chain(&path).is_err());

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_fault_preserves_existing_checkpoint() {
        let dir = std::env::temp_dir().join(format!("usd_ckpt_fault_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");

        persist(&path, &seal(b"good")).unwrap();
        // Fail each op in turn; the previously persisted checkpoint (or its
        // rotation) must stay loadable through the chain after every fault.
        for op in 1..=5 {
            let err = persist_with(&path, &seal(b"next"), &mut FaultPlan::fail_on_op(op));
            match err {
                Err(CheckpointError::Io(_)) => {
                    let (body, _) = load_chain(&path).unwrap();
                    assert!(body == b"good" || body == b"next");
                }
                Ok(()) => break, // plan ran past the op count: persist finished
                Err(e) => panic!("unexpected error {e}"),
            }
            // Reset to a known-good state for the next fault point.
            persist(&path, &seal(b"good")).unwrap();
        }

        fs::remove_dir_all(&dir).unwrap();
    }
}
