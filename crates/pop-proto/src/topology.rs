//! Graph family generators for topology experiments.
//!
//! The paper analyzes USD under the uniform *clique* scheduler; this module
//! provides the standard interaction-graph families used to probe how its
//! Ω(kn log n) stabilization barrier behaves off the complete graph:
//! cycles, 2D tori, hypercubes, random d-regular graphs, Erdős–Rényi
//! G(n, p), and the complete graph as the degenerate reference topology.
//!
//! Every family is named by the [`TopologyFamily`] enum and built through
//! [`TopologyFamily::build`], which is **deterministic in `(n, seed)`** —
//! random families derive all randomness from a [`SimRng`] seeded with the
//! given seed, so experiment sweeps are reproducible cell by cell.
//!
//! Families with structural constraints on `n` (perfect square for the
//! torus, power of two for the hypercube, parity of `n·d` for d-regular)
//! expose [`TopologyFamily::snap_n`], which rounds a requested size down to
//! the nearest feasible one; sweep grids use it so the same nominal `n`
//! column stays comparable across families.

use crate::graph::Graph;
use sim_stats::rng::SimRng;
use std::collections::HashSet;
use std::str::FromStr;

/// Default degree for the degree-parameterized families (`regular`, `er`).
pub const DEFAULT_DEGREE: usize = 8;

/// A named family of interaction graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyFamily {
    /// The complete graph K_n — the paper's model, materialized as an
    /// explicit Θ(n²) edge list (degenerate reference; keep n modest).
    Complete,
    /// The cycle C_n.
    Cycle,
    /// The √n × √n torus (4-regular); requires a perfect-square n ≥ 9.
    Torus,
    /// The log₂(n)-dimensional hypercube; requires n a power of two.
    Hypercube,
    /// A random simple d-regular graph (configuration model with pair
    /// rejection/repair); requires `n·d` even and `d < n`.
    Regular {
        /// Vertex degree.
        d: usize,
    },
    /// Erdős–Rényi G(n, p) with `p = avg_degree / (n − 1)`.
    ErdosRenyi {
        /// Expected vertex degree (sets `p`).
        avg_degree: f64,
    },
}

impl TopologyFamily {
    /// The degree-parameterized families at degree `d`, plus the fixed
    /// sparse families — the default sweep set (the complete graph is
    /// excluded: its Θ(n²) edge list is a demo, not a sweep cell).
    pub fn sweep_set(d: usize) -> Vec<TopologyFamily> {
        vec![
            TopologyFamily::Cycle,
            TopologyFamily::Torus,
            TopologyFamily::Hypercube,
            TopologyFamily::Regular { d },
            TopologyFamily::ErdosRenyi {
                avg_degree: d as f64,
            },
        ]
    }

    /// Flag-friendly name (`complete`, `cycle`, `torus`, `hypercube`,
    /// `regular:<d>`, `er:<avg>`).
    pub fn name(&self) -> String {
        match self {
            TopologyFamily::Complete => "complete".into(),
            TopologyFamily::Cycle => "cycle".into(),
            TopologyFamily::Torus => "torus".into(),
            TopologyFamily::Hypercube => "hypercube".into(),
            TopologyFamily::Regular { d } => format!("regular:{d}"),
            TopologyFamily::ErdosRenyi { avg_degree } => format!("er:{avg_degree}"),
        }
    }

    /// Whether this family is degree-parameterized (i.e.
    /// [`TopologyFamily::with_degree`] has any effect).
    pub fn takes_degree(&self) -> bool {
        matches!(
            self,
            TopologyFamily::Regular { .. } | TopologyFamily::ErdosRenyi { .. }
        )
    }

    /// Replace the degree parameter of a degree-parameterized family
    /// (`regular`, `er`); other families are returned unchanged.
    #[must_use]
    pub fn with_degree(self, d: usize) -> Self {
        match self {
            TopologyFamily::Regular { .. } => TopologyFamily::Regular { d },
            TopologyFamily::ErdosRenyi { .. } => TopologyFamily::ErdosRenyi {
                avg_degree: d as f64,
            },
            other => other,
        }
    }

    /// The largest feasible population ≤ `n` for this family (all families
    /// need at least the size that makes them well-defined: n ≥ 3 for the
    /// cycle, 9 for the torus, 2 for the hypercube, d + 1 for d-regular).
    pub fn snap_n(&self, n: usize) -> usize {
        match self {
            TopologyFamily::Complete | TopologyFamily::ErdosRenyi { .. } => n.max(2),
            TopologyFamily::Cycle => n.max(3),
            TopologyFamily::Torus => {
                let side = (n.isqrt()).max(3);
                side * side
            }
            TopologyFamily::Hypercube => {
                if n < 2 {
                    2
                } else {
                    // Largest power of two ≤ n.
                    1usize << (usize::BITS - 1 - n.leading_zeros())
                }
            }
            TopologyFamily::Regular { d } => {
                let n = n.max(d + 1);
                if n * d % 2 == 1 {
                    n + 1 // odd n with odd d: bump to make n·d even
                } else {
                    n
                }
            }
        }
    }

    /// Build the graph on `n` vertices. Deterministic in `(self, n, seed)`;
    /// the seed only matters for the random families. Panics if `n` is
    /// infeasible for the family (use [`TopologyFamily::snap_n`] first).
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        match *self {
            TopologyFamily::Complete => complete(n),
            TopologyFamily::Cycle => Graph::cycle(n),
            TopologyFamily::Torus => torus(n),
            TopologyFamily::Hypercube => hypercube(n),
            TopologyFamily::Regular { d } => {
                let mut rng = SimRng::new(seed);
                random_regular(n, d, &mut rng)
            }
            TopologyFamily::ErdosRenyi { avg_degree } => {
                assert!(n >= 2, "G(n,p) needs n >= 2");
                let p = (avg_degree / (n as f64 - 1.0)).clamp(0.0, 1.0);
                let mut rng = SimRng::new(seed);
                erdos_renyi_sparse(n, p, &mut rng)
            }
        }
    }
}

impl std::fmt::Display for TopologyFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl FromStr for TopologyFamily {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (base, param) = match s.split_once(':') {
            Some((b, p)) => (b, Some(p)),
            None => (s, None),
        };
        let parse_d = |p: Option<&str>| -> Result<usize, String> {
            match p {
                None => Ok(DEFAULT_DEGREE),
                Some(v) => v.parse().map_err(|e| format!("degree '{v}': {e}")),
            }
        };
        match base {
            "complete" | "clique" => Ok(TopologyFamily::Complete),
            "cycle" | "ring" => Ok(TopologyFamily::Cycle),
            "torus" => Ok(TopologyFamily::Torus),
            "hypercube" | "cube" => Ok(TopologyFamily::Hypercube),
            "regular" => {
                let d = parse_d(param)?;
                if d == 0 {
                    return Err("regular needs degree >= 1".to_string());
                }
                Ok(TopologyFamily::Regular { d })
            }
            "er" | "erdos-renyi" => {
                let avg_degree = match param {
                    None => DEFAULT_DEGREE as f64,
                    Some(v) => v.parse().map_err(|e| format!("avg degree '{v}': {e}"))?,
                };
                if !(avg_degree > 0.0 && avg_degree.is_finite()) {
                    return Err("er needs a positive finite average degree".to_string());
                }
                Ok(TopologyFamily::ErdosRenyi { avg_degree })
            }
            other => Err(format!(
                "unknown topology '{other}' \
                 (expected complete|cycle|torus|hypercube|regular[:d]|er[:avg])"
            )),
        }
    }
}

/// The complete graph K_n as an explicit edge list (Θ(n²) memory).
fn complete(n: usize) -> Graph {
    assert!(n >= 2, "complete graph needs n >= 2");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a as u32, b as u32));
        }
    }
    Graph::from_edges(n, edges)
}

/// The √n × √n torus with wraparound in both dimensions (4-regular).
fn torus(n: usize) -> Graph {
    let side = n.isqrt();
    assert!(
        side * side == n && side >= 3,
        "torus needs a perfect-square n with side >= 3, got n={n}"
    );
    let idx = |r: usize, c: usize| (r * side + c) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..side {
        for c in 0..side {
            edges.push((idx(r, c), idx(r, (c + 1) % side)));
            edges.push((idx(r, c), idx((r + 1) % side, c)));
        }
    }
    Graph::from_edges(n, edges)
}

/// The log₂(n)-dimensional hypercube.
fn hypercube(n: usize) -> Graph {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "hypercube needs a power-of-two n >= 2, got {n}"
    );
    let dim = n.trailing_zeros();
    let mut edges = Vec::with_capacity(n * dim as usize / 2);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1usize << b);
            if v < u {
                edges.push((v as u32, u as u32));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// Unordered-edge key for the simplicity checks.
#[inline]
fn edge_key(a: u32, b: u32) -> u64 {
    ((a.min(b) as u64) << 32) | a.max(b) as u64
}

/// Random simple d-regular graph via the configuration model: d stubs per
/// vertex, a uniform random perfect matching of the stubs, and rejection of
/// conflicting pairs — repaired locally by double-edge swaps against
/// uniformly chosen good edges (re-drawing only the offending pairs instead
/// of the whole matching, which for d ≥ 4 would succeed with probability
/// e^−Ω(d²) per attempt). The result is exactly d-regular and simple; the
/// distribution is the standard asymptotically-uniform repaired
/// configuration model.
fn random_regular(n: usize, d: usize, rng: &mut SimRng) -> Graph {
    assert!(d >= 1 && d < n, "regular graph needs 1 <= d < n");
    assert!((n * d).is_multiple_of(2), "regular graph needs n*d even");
    if d == n - 1 {
        return complete(n); // the unique (n−1)-regular simple graph
    }
    let m = n * d / 2;
    'attempt: for attempt in 0..64 {
        let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
        for v in 0..n {
            stubs.extend(std::iter::repeat_n(v as u32, d));
        }
        rng.shuffle(&mut stubs);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
        let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
        let mut bad: Vec<usize> = Vec::new();
        for i in 0..m {
            let (a, b) = (stubs[2 * i], stubs[2 * i + 1]);
            if a == b || !seen.insert(edge_key(a, b)) {
                bad.push(i);
            }
            edges.push((a, b));
        }
        // Repair: swap each bad pair against a random good edge.
        let mut is_bad = vec![false; m];
        for &i in &bad {
            is_bad[i] = true;
        }
        let mut tries = 0usize;
        while let Some(&ei) = bad.last() {
            tries += 1;
            if tries > 64 * m + 4096 {
                continue 'attempt; // pathological matching: rebuild
            }
            let ej = rng.index(m);
            if ej == ei || is_bad[ej] {
                continue;
            }
            let (a, b) = edges[ei];
            let (c, d2) = edges[ej];
            // Rewire (a,b),(c,d2) -> (a,c),(b,d2); both new edges must be
            // simple and fresh.
            if a == c || b == d2 {
                continue;
            }
            let (k1, k2) = (edge_key(a, c), edge_key(b, d2));
            if k1 == k2 || seen.contains(&k1) || seen.contains(&k2) {
                continue;
            }
            seen.remove(&edge_key(c, d2));
            seen.insert(k1);
            seen.insert(k2);
            edges[ei] = (a, c);
            edges[ej] = (b, d2);
            is_bad[ei] = false;
            bad.pop();
        }
        debug_assert!(attempt < 63);
        return Graph::from_edges(n, edges);
    }
    unreachable!("configuration-model repair failed 64 times (n={n}, d={d})");
}

/// Sparse G(n, p) sampler: walks the C(n, 2) potential edges with geometric
/// gaps (O(p·n²) expected work instead of the dense Θ(n²) Bernoulli scan),
/// exactly equivalent in distribution to per-edge Bernoulli(p) trials.
fn erdos_renyi_sparse(n: usize, p: f64, rng: &mut SimRng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p <= 0.0 {
        return Graph::from_edges(n, Vec::new());
    }
    if p >= 1.0 {
        return complete(n);
    }
    let total = (n as u64) * (n as u64 - 1) / 2;
    let mut edges = Vec::with_capacity(((total as f64 * p) * 1.1) as usize + 16);
    let mut idx = rng.geometric(p);
    while idx < total {
        edges.push(unrank_pair(idx, n as u64));
        idx = idx.saturating_add(1 + rng.geometric(p));
    }
    Graph::from_edges(n, edges)
}

/// Map a linear index over the row-major upper triangle (a < b) back to the
/// vertex pair: index = a(n−1) − a(a−1)/2 + (b − a − 1).
fn unrank_pair(idx: u64, n: u64) -> (u32, u32) {
    let cum = |a: u64| a * (n - 1) - a * (a.saturating_sub(1)) / 2;
    // f64 inversion of the quadratic, then exact fix-up.
    let disc = ((2 * n - 1) as f64).powi(2) - 8.0 * idx as f64;
    let mut a = (((2 * n - 1) as f64 - disc.max(0.0).sqrt()) / 2.0).floor() as u64;
    a = a.min(n - 2);
    while a > 0 && cum(a) > idx {
        a -= 1;
    }
    while a + 1 < n - 1 && cum(a + 1) <= idx {
        a += 1;
    }
    let b = a + 1 + (idx - cum(a));
    debug_assert!(b < n, "unrank overflow: idx={idx}, n={n} -> ({a},{b})");
    (a as u32, b as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_simple(g: &Graph) {
        let mut seen = HashSet::new();
        for &(a, b) in g.edges() {
            assert_ne!(a, b, "self-loop ({a},{b})");
            assert!(seen.insert(edge_key(a, b)), "duplicate edge ({a},{b})");
        }
    }

    #[test]
    fn complete_structure() {
        let g = TopologyFamily::Complete.build(10, 0);
        assert_eq!(g.num_edges(), 45);
        assert!(g.degrees().iter().all(|&d| d == 9));
        assert_simple(&g);
        assert!(g.is_connected());
    }

    #[test]
    fn torus_structure() {
        let g = TopologyFamily::Torus.build(25, 0);
        assert_eq!(g.num_edges(), 50);
        assert!(g.degrees().iter().all(|&d| d == 4));
        assert_simple(&g);
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_structure() {
        let g = TopologyFamily::Hypercube.build(64, 0);
        assert_eq!(g.num_edges(), 64 * 6 / 2);
        assert!(g.degrees().iter().all(|&d| d == 6));
        assert_simple(&g);
        assert!(g.is_connected());
    }

    #[test]
    fn random_regular_structure() {
        for (n, d, seed) in [(100, 3, 1u64), (1000, 8, 2), (64, 7, 3), (50, 49, 4)] {
            let g = TopologyFamily::Regular { d }.build(n, seed);
            assert_eq!(g.n(), n);
            assert_eq!(g.num_edges(), n * d / 2, "n={n} d={d}");
            assert!(
                g.degrees().iter().all(|&deg| deg == d),
                "degree sequence broken at n={n}, d={d}"
            );
            assert_simple(&g);
        }
    }

    #[test]
    fn random_regular_d3_plus_is_connected_at_test_seeds() {
        // Connectivity holds w.h.p. for d >= 3; the fixed seeds used across
        // the test suite must produce connected graphs.
        for seed in 0..8 {
            let g = TopologyFamily::Regular { d: 8 }.build(512, seed);
            assert!(g.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn erdos_renyi_matches_dense_reference_law() {
        // The sparse geometric-gap sampler must produce the same edge-count
        // scale as the dense Bernoulli scan.
        let n = 200usize;
        let avg = 8.0;
        let mut total = 0usize;
        let reps = 40;
        for seed in 0..reps {
            let g = TopologyFamily::ErdosRenyi { avg_degree: avg }.build(n, seed);
            assert_simple(&g);
            total += g.num_edges();
        }
        let mean = total as f64 / reps as f64;
        let expect = avg / 2.0 * n as f64; // n·avg/2 edges
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean edges {mean} vs {expect}"
        );
    }

    #[test]
    fn er_extreme_probabilities() {
        let empty = erdos_renyi_sparse(30, 0.0, &mut SimRng::new(1));
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi_sparse(30, 1.0, &mut SimRng::new(1));
        assert_eq!(full.num_edges(), 435);
    }

    #[test]
    fn unrank_covers_all_pairs_in_order() {
        let n = 9u64;
        let mut expect = Vec::new();
        for a in 0..9u32 {
            for b in (a + 1)..9 {
                expect.push((a, b));
            }
        }
        let got: Vec<(u32, u32)> = (0..n * (n - 1) / 2).map(|i| unrank_pair(i, n)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn seeded_builds_are_deterministic() {
        for fam in [
            TopologyFamily::Regular { d: 6 },
            TopologyFamily::ErdosRenyi { avg_degree: 5.0 },
        ] {
            let a = fam.build(300, 42);
            let b = fam.build(300, 42);
            assert_eq!(a, b, "{fam} not deterministic");
            let c = fam.build(300, 43);
            assert_ne!(a, c, "{fam} ignores the seed");
        }
    }

    #[test]
    fn snap_n_produces_feasible_sizes() {
        for fam in [
            TopologyFamily::Complete,
            TopologyFamily::Cycle,
            TopologyFamily::Torus,
            TopologyFamily::Hypercube,
            TopologyFamily::Regular { d: 3 },
            TopologyFamily::ErdosRenyi { avg_degree: 4.0 },
        ] {
            for n in [2usize, 3, 9, 10, 100, 1000, 1023] {
                let snapped = fam.snap_n(n);
                // Feasible: build must not panic, and snapping is sticky.
                let g = fam.build(snapped, 7);
                assert_eq!(g.n(), snapped);
                assert_eq!(fam.snap_n(snapped), snapped, "{fam} snap not idempotent");
            }
        }
        assert_eq!(TopologyFamily::Torus.snap_n(1000), 961); // 31²
        assert_eq!(TopologyFamily::Hypercube.snap_n(1000), 512);
        assert_eq!(TopologyFamily::Regular { d: 3 }.snap_n(99), 100); // parity
    }

    #[test]
    fn names_roundtrip_through_fromstr() {
        for fam in [
            TopologyFamily::Complete,
            TopologyFamily::Cycle,
            TopologyFamily::Torus,
            TopologyFamily::Hypercube,
            TopologyFamily::Regular { d: 12 },
            TopologyFamily::ErdosRenyi { avg_degree: 6.0 },
        ] {
            let parsed: TopologyFamily = fam.name().parse().unwrap();
            assert_eq!(parsed, fam);
        }
        assert_eq!(
            "regular".parse::<TopologyFamily>().unwrap(),
            TopologyFamily::Regular { d: DEFAULT_DEGREE }
        );
        assert!("moebius".parse::<TopologyFamily>().is_err());
        assert!("regular:x".parse::<TopologyFamily>().is_err());
        // Degenerate parameters are parse errors, not downstream panics.
        assert!("regular:0".parse::<TopologyFamily>().is_err());
        assert!("er:0".parse::<TopologyFamily>().is_err());
        assert!("er:-3".parse::<TopologyFamily>().is_err());
        assert!("er:nan".parse::<TopologyFamily>().is_err());
    }

    #[test]
    fn with_degree_applies_only_to_parameterized_families() {
        assert_eq!(
            TopologyFamily::Regular { d: 8 }.with_degree(4),
            TopologyFamily::Regular { d: 4 }
        );
        assert_eq!(
            TopologyFamily::ErdosRenyi { avg_degree: 8.0 }.with_degree(4),
            TopologyFamily::ErdosRenyi { avg_degree: 4.0 }
        );
        assert_eq!(TopologyFamily::Cycle.with_degree(4), TopologyFamily::Cycle);
    }

    #[test]
    #[should_panic(expected = "perfect-square")]
    fn torus_rejects_non_square() {
        TopologyFamily::Torus.build(10, 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_non_power() {
        TopologyFamily::Hypercube.build(12, 0);
    }

    #[test]
    #[should_panic(expected = "n*d even")]
    fn regular_rejects_odd_product() {
        TopologyFamily::Regular { d: 3 }.build(9, 0);
    }
}
