//! The [`Protocol`] trait: deterministic pairwise transition functions.
//!
//! A population protocol is a pair `(f, γ)` over a finite state set Σ.
//! For simulation we require states to be densely indexable (`0..num_states`)
//! so count-based configurations are plain vectors; protocols whose natural
//! state type is richer (enums, tuples) implement the index mapping.

use std::fmt::Debug;

/// A population protocol: finite state set, deterministic pairwise
/// transition function `f : Σ² → Σ²`, and output map `γ : Σ → Γ`.
///
/// The transition receives the interaction as an **ordered** pair
/// (initiator, responder), matching the paper's formalization
/// `f(q′, q″) = (r′, r″)`. Symmetric protocols simply ignore the order.
///
/// Implementations must be deterministic and total: `transition` must be a
/// pure function of its inputs.
pub trait Protocol {
    /// The protocol's state type.
    type State: Copy + Eq + Debug;
    /// The protocol's output value type (Γ). For many protocols Γ = Σ.
    type Output: Copy + Eq + Debug;

    /// Number of states |Σ|. State indices range over `0..num_states()`.
    fn num_states(&self) -> usize;

    /// Map a state to its dense index in `0..num_states()`.
    fn index_of(&self, state: Self::State) -> usize;

    /// Map a dense index back to a state. Panics if out of range.
    fn state_of(&self, index: usize) -> Self::State;

    /// The transition function on states.
    fn transition(
        &self,
        initiator: Self::State,
        responder: Self::State,
    ) -> (Self::State, Self::State);

    /// The output function γ.
    fn output(&self, state: Self::State) -> Self::Output;

    /// The transition function on dense indices (the simulators' hot path).
    ///
    /// The default implementation round-trips through `state_of`; protocols
    /// with a cheap index representation may override it.
    #[inline]
    fn transition_indices(&self, initiator: usize, responder: usize) -> (usize, usize) {
        let (a, b) = self.transition(self.state_of(initiator), self.state_of(responder));
        (self.index_of(a), self.index_of(b))
    }

    /// Whether an interaction between these two states changes anything.
    /// Simulators use this to detect "silent" (stable) configurations.
    #[inline]
    fn is_noop(&self, initiator: usize, responder: usize) -> bool {
        self.transition_indices(initiator, responder) == (initiator, responder)
    }

    /// Whether a count configuration (indexed by state) is **silent**: no
    /// pair of present states can produce any change. A silent configuration
    /// is stable in the strongest sense — the paper's notion of
    /// stabilization for the Undecided State Dynamics (consensus on one
    /// opinion) coincides with silence.
    fn is_silent(&self, counts: &[u64]) -> bool {
        debug_assert_eq!(counts.len(), self.num_states());
        for (i, &ci) in counts.iter().enumerate() {
            if ci == 0 {
                continue;
            }
            for (j, &cj) in counts.iter().enumerate() {
                if cj == 0 {
                    continue;
                }
                if i == j && ci < 2 {
                    continue; // a single agent cannot meet itself
                }
                if !self.is_noop(i, j) {
                    return false;
                }
            }
        }
        true
    }
}

/// A minimal two-state protocol used throughout the test suites: one-way
/// epidemic ("infection"). State 0 = infected, state 1 = susceptible;
/// an infected agent infects a susceptible one, nothing else happens.
///
/// Its behaviour is fully understood (the number of infected agents is a
/// monotone pure-birth chain reaching `n` in Θ(n log n) interactions), which
/// makes it a good oracle for simulator tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OneWayEpidemic;

/// States of [`OneWayEpidemic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Infection {
    /// Carrying the rumor/infection.
    Infected,
    /// Not yet infected.
    Susceptible,
}

impl Protocol for OneWayEpidemic {
    type State = Infection;
    type Output = bool;

    fn num_states(&self) -> usize {
        2
    }

    fn index_of(&self, state: Infection) -> usize {
        match state {
            Infection::Infected => 0,
            Infection::Susceptible => 1,
        }
    }

    fn state_of(&self, index: usize) -> Infection {
        match index {
            0 => Infection::Infected,
            1 => Infection::Susceptible,
            _ => panic!("OneWayEpidemic has 2 states, got index {index}"),
        }
    }

    fn transition(&self, a: Infection, b: Infection) -> (Infection, Infection) {
        use Infection::*;
        match (a, b) {
            (Infected, Susceptible) | (Susceptible, Infected) => (Infected, Infected),
            other => other,
        }
    }

    fn output(&self, state: Infection) -> bool {
        state == Infection::Infected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidemic_transition_table() {
        use Infection::*;
        let p = OneWayEpidemic;
        assert_eq!(p.transition(Infected, Susceptible), (Infected, Infected));
        assert_eq!(p.transition(Susceptible, Infected), (Infected, Infected));
        assert_eq!(p.transition(Infected, Infected), (Infected, Infected));
        assert_eq!(
            p.transition(Susceptible, Susceptible),
            (Susceptible, Susceptible)
        );
    }

    #[test]
    fn index_roundtrip() {
        let p = OneWayEpidemic;
        for i in 0..p.num_states() {
            assert_eq!(p.index_of(p.state_of(i)), i);
        }
    }

    #[test]
    fn transition_indices_matches_states() {
        let p = OneWayEpidemic;
        for a in 0..2 {
            for b in 0..2 {
                let (x, y) = p.transition_indices(a, b);
                let (sx, sy) = p.transition(p.state_of(a), p.state_of(b));
                assert_eq!((x, y), (p.index_of(sx), p.index_of(sy)));
            }
        }
    }

    #[test]
    fn noop_detection() {
        let p = OneWayEpidemic;
        assert!(p.is_noop(0, 0));
        assert!(p.is_noop(1, 1));
        assert!(!p.is_noop(0, 1));
        assert!(!p.is_noop(1, 0));
    }

    #[test]
    fn silence_detection() {
        let p = OneWayEpidemic;
        assert!(p.is_silent(&[5, 0])); // all infected
        assert!(p.is_silent(&[0, 5])); // all susceptible: nothing can happen
        assert!(!p.is_silent(&[1, 4])); // mixed: infection possible
        assert!(p.is_silent(&[1, 0])); // single agent
    }

    #[test]
    fn output_function() {
        let p = OneWayEpidemic;
        assert!(p.output(Infection::Infected));
        assert!(!p.output(Infection::Susceptible));
    }

    #[test]
    #[should_panic(expected = "2 states")]
    fn out_of_range_index_panics() {
        OneWayEpidemic.state_of(2);
    }
}
