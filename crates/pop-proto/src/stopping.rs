//! Stop conditions and run outcomes.
//!
//! Long simulations stop for one of three reasons: the configuration became
//! **silent** (stabilized), a user predicate fired, or the interaction
//! budget ran out. [`Stopper`] packages the bookkeeping — including checking
//! the (comparatively expensive) silence predicate only every `check_every`
//! interactions — and [`RunOutcome`] reports what happened.

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The configuration became silent (no interaction can change it).
    Silent,
    /// The caller's predicate returned true.
    Predicate,
    /// The interaction budget was exhausted.
    BudgetExhausted,
}

/// Outcome of a driven run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Total interactions at the stopping point.
    pub interactions: u64,
}

impl RunOutcome {
    /// Parallel time at the stopping point for a population of size `n`.
    pub fn parallel_time(&self, n: u64) -> f64 {
        self.interactions as f64 / n as f64
    }

    /// Whether the run stabilized (stopped silent).
    pub fn stabilized(&self) -> bool {
        self.reason == StopReason::Silent
    }
}

/// Budgeted stop-condition evaluator with periodic silence checks.
///
/// Silence checking costs O(|Σ|²) in general, so it is only evaluated every
/// `check_every` interactions; the returned interaction count is therefore
/// an upper bound on the true stabilization time that is at most
/// `check_every − 1` interactions late. Callers that need exact
/// stabilization instants (the USD crate does) use a protocol-specific O(1)
/// consensus check as the predicate instead.
#[derive(Debug, Clone)]
pub struct Stopper {
    budget: u64,
    check_every: u64,
}

impl Stopper {
    /// A stopper with the given interaction budget, checking for silence
    /// every `check_every` interactions (0 disables silence checking).
    pub fn new(budget: u64, check_every: u64) -> Self {
        Stopper {
            budget,
            check_every,
        }
    }

    /// Interaction budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Drive `step` until silence, predicate, or budget exhaustion.
    ///
    /// * `step(count)` must simulate exactly one interaction (`count` is the
    ///   number of interactions completed so far in this run);
    /// * `is_silent()` checks the current configuration for silence;
    /// * `predicate()` is the caller's early-exit condition, checked after
    ///   every interaction.
    pub fn drive(
        &self,
        mut step: impl FnMut(u64),
        mut is_silent: impl FnMut() -> bool,
        mut predicate: impl FnMut() -> bool,
    ) -> RunOutcome {
        let mut done = 0u64;
        // A silent initial configuration stabilizes in zero interactions.
        if self.check_every > 0 && is_silent() {
            return RunOutcome {
                reason: StopReason::Silent,
                interactions: 0,
            };
        }
        while done < self.budget {
            step(done);
            done += 1;
            if predicate() {
                return RunOutcome {
                    reason: StopReason::Predicate,
                    interactions: done,
                };
            }
            if self.check_every > 0 && done.is_multiple_of(self.check_every) && is_silent() {
                return RunOutcome {
                    reason: StopReason::Silent,
                    interactions: done,
                };
            }
        }
        RunOutcome {
            reason: StopReason::BudgetExhausted,
            interactions: done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_exhaustion() {
        let s = Stopper::new(100, 0);
        let mut steps = 0u64;
        let out = s.drive(|_| steps += 1, || false, || false);
        assert_eq!(out.reason, StopReason::BudgetExhausted);
        assert_eq!(out.interactions, 100);
        assert_eq!(steps, 100);
    }

    #[test]
    fn predicate_fires_immediately_when_true() {
        let s = Stopper::new(100, 0);
        let out = s.drive(|_| {}, || false, || true);
        assert_eq!(out.reason, StopReason::Predicate);
        assert_eq!(out.interactions, 1);
    }

    #[test]
    fn silence_checked_on_schedule() {
        let s = Stopper::new(1000, 10);
        let steps = std::cell::Cell::new(0u64);
        // Becomes silent after step 25; detected at the step-30 check.
        let out = s.drive(
            |_| steps.set(steps.get() + 1),
            || steps.get() >= 25,
            || false,
        );
        assert_eq!(out.reason, StopReason::Silent);
        assert_eq!(out.interactions, 30);
    }

    #[test]
    fn initially_silent_configuration() {
        let s = Stopper::new(1000, 5);
        let out = s.drive(|_| panic!("should not step"), || true, || false);
        assert_eq!(out.reason, StopReason::Silent);
        assert_eq!(out.interactions, 0);
    }

    #[test]
    fn silence_disabled_with_zero_check_every() {
        let s = Stopper::new(50, 0);
        let out = s.drive(|_| {}, || true, || false);
        assert_eq!(out.reason, StopReason::BudgetExhausted);
    }

    #[test]
    fn outcome_parallel_time() {
        let out = RunOutcome {
            reason: StopReason::Silent,
            interactions: 500,
        };
        assert!((out.parallel_time(100) - 5.0).abs() < 1e-12);
        assert!(out.stabilized());
    }
}
