//! Weighted sampling structures for the simulation hot path.
//!
//! * [`FenwickSampler`] — a Fenwick (binary indexed) tree over integer
//!   weights supporting O(log m) point updates and O(log m) inverse-CDF
//!   sampling. This is what makes the count-based simulator's interaction
//!   step O(log |Σ|) even while counts change on every step.
//! * [`AliasTable`] — Walker/Vose alias method for O(1) sampling from a
//!   **static** distribution; used for bulk initial-opinion assignment and
//!   as a bench comparison point.

use sim_stats::rng::SimRng;

/// Fenwick-tree-backed categorical sampler over `m` integer weights.
///
/// Supports point updates (`set`, `add`) and weighted sampling in
/// O(log m). Weights are `u64` counts; the total must stay ≤ `u64::MAX / 2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenwickSampler {
    /// 1-based Fenwick array; `tree[i]` covers a dyadic block ending at `i`.
    tree: Vec<u64>,
    /// Mirror of the raw weights for O(1) reads.
    weights: Vec<u64>,
    total: u64,
}

impl FenwickSampler {
    /// Build from initial weights.
    pub fn new(weights: &[u64]) -> Self {
        let m = weights.len();
        let mut s = FenwickSampler {
            tree: vec![0; m + 1],
            weights: weights.to_vec(),
            total: 0,
        };
        for (i, &w) in weights.iter().enumerate() {
            s.tree_add(i, w);
            s.total += w;
        }
        s
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are zero categories.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of category `i`.
    #[inline]
    pub fn weight(&self, i: usize) -> u64 {
        self.weights[i]
    }

    /// Sum of all weights.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All current weights (slice view).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    #[inline]
    fn tree_add(&mut self, i: usize, delta: u64) {
        let mut idx = i + 1;
        while idx < self.tree.len() {
            self.tree[idx] = self.tree[idx].wrapping_add(delta);
            idx += idx & idx.wrapping_neg();
        }
    }

    #[inline]
    fn tree_sub(&mut self, i: usize, delta: u64) {
        let mut idx = i + 1;
        while idx < self.tree.len() {
            self.tree[idx] = self.tree[idx].wrapping_sub(delta);
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Set the weight of category `i`.
    pub fn set(&mut self, i: usize, w: u64) {
        let old = self.weights[i];
        if w >= old {
            let d = w - old;
            self.tree_add(i, d);
            self.total += d;
        } else {
            let d = old - w;
            self.tree_sub(i, d);
            self.total -= d;
        }
        self.weights[i] = w;
    }

    /// Add a signed delta to category `i`'s weight. Panics on underflow.
    #[inline]
    pub fn add(&mut self, i: usize, delta: i64) {
        if delta >= 0 {
            let d = delta as u64;
            self.weights[i] = self.weights[i].checked_add(d).expect("weight overflow");
            self.tree_add(i, d);
            self.total += d;
        } else {
            let d = delta.unsigned_abs();
            self.weights[i] = self.weights[i].checked_sub(d).expect("weight underflow");
            self.tree_sub(i, d);
            self.total -= d;
        }
    }

    /// Find the smallest `i` such that the prefix sum through `i` exceeds
    /// `target` (0-based). Precondition: `target < total()`.
    #[inline]
    pub fn find(&self, mut target: u64) -> usize {
        debug_assert!(target < self.total, "find target out of range");
        let mut pos = 0usize;
        // Largest power of two ≤ len.
        let mut step = self.tree.len().next_power_of_two() >> 1;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // pos is the count of categories fully skipped; index = pos
    }

    /// Sample a category index with probability proportional to its weight.
    /// Panics if the total weight is zero.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        assert!(self.total > 0, "sampling from empty distribution");
        self.find(rng.below(self.total))
    }

    /// [`FenwickSampler::find`] over *corrected* weights `weight(i) +
    /// delta(i)` without materializing the deltas into the tree: `dp(x)`
    /// must return `Σ_{i < x} delta(i)` (the exclusive prefix sum of the
    /// corrections, evaluated on demand). The descent visits O(log m)
    /// nodes and calls `dp` at most twice per node, so a caller with a
    /// small sorted delta set answers each `dp` by binary search and pays
    /// O(log m · log p) total.
    ///
    /// Preconditions: every corrected weight is ≥ 0, the corrected total
    /// fits `i64`, and `target <` the corrected total. With those, the
    /// result is exactly `find(target)` on a tree that had the deltas
    /// applied — this is what lets the sparse engine keep its Fenwick tree
    /// stale and still draw from the *true* weights in one pass, with no
    /// rejection.
    #[inline]
    pub fn find_adjusted<F: Fn(usize) -> i64>(&self, target: u64, dp: F) -> usize {
        let mut rem = target as i64;
        let mut pos = 0usize;
        let mut dp_pos = 0i64;
        let mut step = self.tree.len().next_power_of_two() >> 1;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() {
                // Node `next` covers 0-based items [pos, next): its
                // corrected sum is the stored dyadic sum plus the deltas
                // of exactly those items.
                let dp_next = dp(next);
                let node = self.tree[next] as i64 + dp_next - dp_pos;
                if node <= rem {
                    rem -= node;
                    pos = next;
                    dp_pos = dp_next;
                }
            }
            step >>= 1;
        }
        pos
    }

    /// Sample an ordered pair of **distinct items** (two different agents)
    /// where each category's weight is its agent count: the first item is
    /// drawn from all `total()` agents, the second from the remaining
    /// `total() − 1`. Returns the pair of category indices, which may be
    /// equal (two distinct agents in the same state).
    ///
    /// This is exactly the population-protocol scheduler marginalized onto
    /// state counts. Panics if `total() < 2`.
    #[inline]
    pub fn sample_distinct_pair(&mut self, rng: &mut SimRng) -> (usize, usize) {
        assert!(self.total >= 2, "need at least two agents");
        let a = self.sample(rng);
        self.add(a, -1);
        let b = self.sample(rng);
        self.add(a, 1);
        (a, b)
    }
}

/// Walker/Vose alias table for O(1) sampling from a fixed distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build from non-negative weights (at least one positive).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs categories");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "alias table needs non-negative weights with positive total"
        );
        let m = weights.len();
        let mut prob = vec![0.0; m];
        let mut alias = vec![0usize; m];
        let scaled: Vec<f64> = weights.iter().map(|&w| w * m as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut rest = scaled.clone();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = rest[s];
            alias[s] = l;
            rest[l] = (rest[l] + rest[s]) - 1.0;
            if rest[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// O(1) sample.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenwick_total_and_weights() {
        let f = FenwickSampler::new(&[3, 0, 7, 5]);
        assert_eq!(f.total(), 15);
        assert_eq!(f.weight(2), 7);
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn fenwick_find_matches_linear_scan() {
        let weights = [3u64, 0, 7, 5, 1, 0, 4];
        let f = FenwickSampler::new(&weights);
        for target in 0..f.total() {
            // Linear reference.
            let mut acc = 0u64;
            let mut expect = 0usize;
            for (i, &w) in weights.iter().enumerate() {
                acc += w;
                if target < acc {
                    expect = i;
                    break;
                }
            }
            assert_eq!(f.find(target), expect, "target {target}");
        }
    }

    #[test]
    fn find_adjusted_matches_find_on_materialized_deltas() {
        // Stale tree [3,0,7,5,1,0,4] with deltas {1:+2, 2:-7, 4:+3, 6:-4}
        // → corrected weights [3,2,0,5,4,0,0].
        let stale = [3u64, 0, 7, 5, 1, 0, 4];
        let deltas: &[(usize, i64)] = &[(1, 2), (2, -7), (4, 3), (6, -4)];
        let corrected = [3u64, 2, 0, 5, 4, 0, 0];
        let f = FenwickSampler::new(&stale);
        let g = FenwickSampler::new(&corrected);
        let dp = |x: usize| -> i64 {
            deltas
                .iter()
                .filter(|&&(i, _)| i < x)
                .map(|&(_, d)| d)
                .sum()
        };
        let total: u64 = corrected.iter().sum();
        for target in 0..total {
            assert_eq!(
                f.find_adjusted(target, dp),
                g.find(target),
                "target {target}"
            );
        }
    }

    #[test]
    fn find_adjusted_with_empty_deltas_is_find() {
        let weights = [3u64, 0, 7, 5, 1, 0, 4];
        let f = FenwickSampler::new(&weights);
        for target in 0..f.total() {
            assert_eq!(f.find_adjusted(target, |_| 0), f.find(target));
        }
    }

    #[test]
    fn fenwick_updates() {
        let mut f = FenwickSampler::new(&[1, 1, 1]);
        f.add(0, 5);
        f.set(1, 0);
        f.add(2, -1);
        assert_eq!(f.weights(), &[6, 0, 0]);
        assert_eq!(f.total(), 6);
        for target in 0..6 {
            assert_eq!(f.find(target), 0);
        }
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn fenwick_underflow_panics() {
        let mut f = FenwickSampler::new(&[1]);
        f.add(0, -2);
    }

    #[test]
    fn fenwick_sampling_distribution() {
        let mut rng = SimRng::new(9);
        let f = FenwickSampler::new(&[1, 2, 3, 4]);
        let mut counts = [0u64; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[f.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = (i + 1) as f64 / 10.0 * n as f64;
            assert!(
                (c as f64 - expect).abs() < expect * 0.06 + 50.0,
                "cat {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn distinct_pair_leaves_weights_intact_and_respects_hypergeometry() {
        let mut rng = SimRng::new(10);
        let mut f = FenwickSampler::new(&[1, 1]);
        // With one agent in each of two states, the pair must always be the
        // two different states (in either order).
        for _ in 0..1000 {
            let (a, b) = f.sample_distinct_pair(&mut rng);
            assert_ne!(a, b);
        }
        assert_eq!(f.weights(), &[1, 1]);

        // With 2 agents in one state only, the pair is always (0,0).
        let mut g = FenwickSampler::new(&[2, 0]);
        for _ in 0..100 {
            assert_eq!(g.sample_distinct_pair(&mut rng), (0, 0));
        }
    }

    #[test]
    fn distinct_pair_second_marginal() {
        // counts = [2, 2]: P(second in same category as first) = 1/3.
        let mut rng = SimRng::new(11);
        let mut f = FenwickSampler::new(&[2, 2]);
        let n = 60_000;
        let mut same = 0u64;
        for _ in 0..n {
            let (a, b) = f.sample_distinct_pair(&mut rng);
            if a == b {
                same += 1;
            }
        }
        let frac = same as f64 / n as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn fenwick_large_sparse() {
        let mut weights = vec![0u64; 1000];
        weights[123] = 1;
        weights[999] = 3;
        let f = FenwickSampler::new(&weights);
        let mut rng = SimRng::new(12);
        let mut counts = [0u64; 2];
        for _ in 0..10_000 {
            match f.sample(&mut rng) {
                123 => counts[0] += 1,
                999 => counts[1] += 1,
                other => panic!("sampled zero-weight category {other}"),
            }
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.35, "ratio {ratio}");
    }

    #[test]
    fn alias_matches_weights() {
        let mut rng = SimRng::new(13);
        let t = AliasTable::new(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(t.len(), 4);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = (i + 1) as f64 / 10.0;
            let frac = c as f64 / n as f64;
            assert!((frac - expect).abs() < 0.01, "cat {i}: {frac} vs {expect}");
        }
    }

    #[test]
    fn alias_handles_degenerate_single_category() {
        let mut rng = SimRng::new(14);
        let t = AliasTable::new(&[5.0]);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_zero_weight_categories_never_sampled() {
        let mut rng = SimRng::new(15);
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }
}
