//! Backend-agnostic observation of simulation trajectories.
//!
//! Every engine behind the [`Simulator`](crate::Simulator) trait can drive
//! an observer through
//! [`Simulator::advance_observed`](crate::Simulator::advance_observed): the
//! observer receives an [`Observation`] at every *advancement boundary that
//! changed the counts* — the current count configuration (a state
//! checkpoint), the cumulative scheduled/effective interaction counters,
//! and the deltas since the previous observation.
//!
//! # Exact vs checkpoint semantics
//!
//! The observation granularity is the backend's advancement granularity:
//!
//! | backend | boundary | `delta_effective` |
//! |---------|----------|-------------------|
//! | `agent`, `count`, `seq` | every interaction | always ≤ 1 (**exact**) |
//! | `skip` | every effective event | always 1 (**exact**) |
//! | `graph` | every effective event (dense and sparse phase) | always 1 (**exact**) |
//! | `batch` | block boundary (~√n draws) | ≥ 1 (**checkpoint**) |
//! | `batchgraph` | block boundary in *both* phases (~√n draws dense, ≤ 64 events sparse) | ≥ 1 (**checkpoint**) |
//! | `pargraph` | block boundary in *both* phases (~m/16 draws dense across domain shards, ≤ 64 events sparse) | ≥ 1 (**checkpoint**) |
//!
//! On the exact backends an observer sees every effective event
//! individually, so first-crossing times and running extrema are exact to
//! the interaction. On the leaping engines (`batch`, `batchgraph`,
//! `pargraph`) a
//! boundary summarizes a whole block of ~√n interactions — and, since the
//! sparse phase became block-leaping too (PR 5), a `batchgraph` sparse
//! boundary summarizes up to 64 effective events; crossing times
//! measured through them are accurate to one block, and an intra-block
//! excursion that retreats before the boundary is invisible. `graph`
//! keeps its exact per-event boundaries in the sparse phase — the shared
//! skipper's Fenwick amortization persists across advancements, so
//! exactness costs no throughput there. Observers
//! that need a finer cadence on the leaping engines can bound the
//! advancement stride via [`SimObserver::max_stride`] (at the cost of
//! shorter leaps); [`Observation::is_exact`] tells the two regimes apart
//! per boundary.
//!
//! # Timeline sampling cadence
//!
//! The flight recorder
//! ([`TimelineRecorder`](crate::telemetry::timeline::TimelineRecorder))
//! is the third view of the same clocks, and unlike observations its
//! boundaries are *not* backend granularity: drivers clamp every
//! advancement to [`horizon`](crate::telemetry::timeline::TimelineRecorder::horizon),
//! so each sample lands exactly on a cadence mark of the **scheduled**
//! clock on every backend (which is what makes a timeline
//! bit-reproducible under a fixed seed). What differs per backend is what
//! the clamp costs — the stride the engine would naturally have taken
//! across the mark:
//!
//! | backend | natural stride | cost of hitting a cadence mark |
//! |---------|----------------|--------------------------------|
//! | `agent`, `count`, `seq` | 1 interaction | none (already per-interaction) |
//! | `skip` | one geometric no-op leap | truncates ≤ 1 leap per mark |
//! | `graph` | per event dense, block-leap sparse | truncates ≤ 1 sparse block per mark |
//! | `batch`, `batchgraph` | ~√n-draw block | truncates ≤ 1 block per mark |
//! | `pargraph` | ~m/16-draw sharded block | truncates ≤ 1 block per mark |
//!
//! At the recorder's default cadence (`max(n, 65 536)` scheduled
//! interactions per sample) one truncated block per mark is a vanishing
//! fraction of the window, which is how the CLI's `--timeline` surface
//! keeps its documented ≤ 2% effective-throughput overhead budget.

/// A view of the simulator state at one observation boundary.
///
/// Boundaries are reported only when the counts changed, so
/// `delta_effective ≥ 1` always holds; scheduled no-ops between boundaries
/// (skipped geometrically by the leaping engines) are folded into
/// `delta_interactions`.
#[derive(Debug, Clone, Copy)]
pub struct Observation<'a> {
    /// Current per-state counts (dense state indexing, length |Σ|).
    pub counts: &'a [u64],
    /// Cumulative scheduled interactions (including no-ops).
    pub interactions: u64,
    /// Cumulative effective interactions.
    pub effective: u64,
    /// Scheduled interactions since the previous observation (or since the
    /// start of the `advance_observed` call for the first one).
    pub delta_interactions: u64,
    /// Effective interactions since the previous observation (≥ 1).
    pub delta_effective: u64,
}

impl Observation<'_> {
    /// Whether this boundary is a single effective event (exact semantics)
    /// rather than a multi-event block checkpoint.
    pub fn is_exact(&self) -> bool {
        self.delta_effective <= 1
    }

    /// Parallel time at this boundary (= interactions / n, with n read off
    /// the counts).
    pub fn parallel_time(&self) -> f64 {
        let n: u64 = self.counts.iter().sum();
        self.interactions as f64 / n as f64
    }
}

/// Receiver of [`Observation`]s during an observed advancement.
///
/// Implemented by any `FnMut(&Observation) -> bool` closure (return `true`
/// to keep running, `false` to stop the advancement early); implement the
/// trait manually to also bound the advancement stride.
pub trait SimObserver {
    /// Offered at every advancement boundary that changed the counts.
    /// Return `false` to end the `advance_observed` call early (budget and
    /// silence end it regardless).
    fn observe(&mut self, obs: &Observation<'_>) -> bool;

    /// Optional cap on the scheduled interactions per advancement
    /// (`None` = the backend's natural granularity). Lowering it forces
    /// the leaping engines to cut blocks short, trading throughput for
    /// observation cadence; it cannot make boundaries *coarser* than the
    /// backend's natural ones.
    fn max_stride(&self) -> Option<u64> {
        None
    }
}

impl<F: FnMut(&Observation<'_>) -> bool> SimObserver for F {
    fn observe(&mut self, obs: &Observation<'_>) -> bool {
        self(obs)
    }
}

/// [`SimObserver`] adaptor fixing a maximum advancement stride around a
/// closure — the cadence-bounded counterpart of the blanket closure impl
/// (e.g. snapshot recorders that want at most ~one parallel round between
/// checkpoints on the leaping engines).
pub struct StridedObserver<F> {
    stride: u64,
    inner: F,
}

impl<F: FnMut(&Observation<'_>) -> bool> StridedObserver<F> {
    /// Observe through `inner`, capping each advancement at `stride ≥ 1`
    /// scheduled interactions.
    pub fn new(stride: u64, inner: F) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        StridedObserver { stride, inner }
    }
}

impl<F: FnMut(&Observation<'_>) -> bool> SimObserver for StridedObserver<F> {
    fn observe(&mut self, obs: &Observation<'_>) -> bool {
        (self.inner)(obs)
    }

    fn max_stride(&self) -> Option<u64> {
        Some(self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_exactness_and_parallel_time() {
        let counts = [3u64, 5, 2];
        let obs = Observation {
            counts: &counts,
            interactions: 20,
            effective: 4,
            delta_interactions: 5,
            delta_effective: 1,
        };
        assert!(obs.is_exact());
        assert!((obs.parallel_time() - 2.0).abs() < 1e-12);
        let block = Observation {
            delta_effective: 7,
            ..obs
        };
        assert!(!block.is_exact());
    }

    #[test]
    fn closures_are_observers_and_strided_caps() {
        let mut seen = 0u64;
        let counts = [1u64, 1];
        let view = Observation {
            counts: &counts,
            interactions: 1,
            effective: 1,
            delta_interactions: 1,
            delta_effective: 1,
        };
        {
            let mut obs = |o: &Observation<'_>| {
                seen += o.delta_effective;
                true
            };
            assert!(SimObserver::observe(&mut obs, &view));
            assert_eq!(SimObserver::max_stride(&obs), None);
        }
        assert_eq!(seen, 1);

        let mut strided = StridedObserver::new(64, |_: &Observation<'_>| true);
        assert_eq!(strided.max_stride(), Some(64));
        assert!(strided.observe(&view));
    }

    #[test]
    #[should_panic(expected = "stride must be at least 1")]
    fn zero_stride_rejected() {
        StridedObserver::new(0, |_: &Observation<'_>| true);
    }
}
