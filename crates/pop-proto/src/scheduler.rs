//! Interaction schedulers.
//!
//! A scheduler picks, at each discrete time step, an ordered pair of distinct
//! agents for interaction. The paper's model is [`CliqueScheduler`]: the
//! pair is chosen uniformly at random without replacement, independently of
//! previous steps (§1.1). [`GraphScheduler`] covers the general
//! graph-restricted model of Angluin et al.: a uniformly random edge with a
//! uniformly random orientation.

use crate::graph::Graph;
use sim_stats::multinomial::distinct_pair;
use sim_stats::rng::SimRng;

/// Chooses an ordered pair of distinct agent indices.
pub trait Scheduler {
    /// The number of agents this scheduler schedules.
    fn population(&self) -> usize;

    /// Pick the next ordered (initiator, responder) pair.
    fn next_pair(&mut self, rng: &mut SimRng) -> (usize, usize);
}

/// Uniform random scheduler on the clique — the paper's communication model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliqueScheduler {
    n: usize,
}

impl CliqueScheduler {
    /// Scheduler over `n ≥ 2` agents.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least 2 agents");
        CliqueScheduler { n }
    }
}

impl Scheduler for CliqueScheduler {
    fn population(&self) -> usize {
        self.n
    }

    #[inline]
    fn next_pair(&mut self, rng: &mut SimRng) -> (usize, usize) {
        let (a, b) = distinct_pair(rng, self.n as u64);
        (a as usize, b as usize)
    }
}

/// Uniform random edge scheduler over a fixed interaction graph: picks an
/// edge uniformly, then orients it uniformly at random.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphScheduler {
    graph: Graph,
}

impl GraphScheduler {
    /// Build from a graph with at least one edge.
    pub fn new(graph: Graph) -> Self {
        assert!(graph.num_edges() > 0, "graph scheduler needs edges");
        GraphScheduler { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

impl Scheduler for GraphScheduler {
    fn population(&self) -> usize {
        self.graph.n()
    }

    #[inline]
    fn next_pair(&mut self, rng: &mut SimRng) -> (usize, usize) {
        let edges = self.graph.edges();
        let (a, b) = edges[rng.index(edges.len())];
        if rng.bernoulli(0.5) {
            (a as usize, b as usize)
        } else {
            (b as usize, a as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_pairs_are_distinct_and_in_range() {
        let mut s = CliqueScheduler::new(10);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let (a, b) = s.next_pair(&mut rng);
            assert_ne!(a, b);
            assert!(a < 10 && b < 10);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn clique_pair_distribution_uniform() {
        let mut s = CliqueScheduler::new(4);
        let mut rng = SimRng::new(2);
        let mut counts = [[0u64; 4]; 4];
        let n = 120_000;
        for _ in 0..n {
            let (a, b) = s.next_pair(&mut rng);
            counts[a][b] += 1;
        }
        // 12 ordered pairs, each expecting n/12 = 10000.
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    assert_eq!(counts[a][b], 0);
                } else {
                    let c = counts[a][b];
                    assert!((9_300..=10_700).contains(&c), "pair ({a},{b}): {c}");
                }
            }
        }
    }

    #[test]
    fn graph_scheduler_respects_edges() {
        let g = Graph::path(3); // edges (0,1), (1,2)
        let mut s = GraphScheduler::new(g);
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let (a, b) = s.next_pair(&mut rng);
            let unordered = if a < b { (a, b) } else { (b, a) };
            assert!(unordered == (0, 1) || unordered == (1, 2), "pair {a},{b}");
        }
    }

    #[test]
    fn graph_scheduler_orientation_is_symmetric() {
        let g = Graph::path(2);
        let mut s = GraphScheduler::new(g);
        let mut rng = SimRng::new(4);
        let mut forward = 0u64;
        let n = 40_000;
        for _ in 0..n {
            let (a, _) = s.next_pair(&mut rng);
            if a == 0 {
                forward += 1;
            }
        }
        let frac = forward as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "needs edges")]
    fn empty_graph_rejected() {
        GraphScheduler::new(Graph::from_edges(3, vec![]));
    }
}
