//! Generic population-protocol substrate.
//!
//! This crate implements the computational model of Angluin et al.
//! (Distributed Computing 2006/2008) exactly as formalized in §1.1 of
//! El-Hayek–Elsässer–Schmid (PODC 2025):
//!
//! * a population of `n` anonymous agents, each holding a state from a
//!   finite state set Σ;
//! * a deterministic transition function `f : Σ² → Σ²` applied to an ordered
//!   pair of interacting agents ([`Protocol`]);
//! * an output function `γ : Σ → Γ` mapping states to output values;
//! * a scheduler selecting, at each discrete time step, an ordered pair of
//!   distinct agents — uniformly at random on the clique in the paper's
//!   model ([`scheduler::CliqueScheduler`]), or restricted to the edges of an
//!   interaction graph in the general model ([`scheduler::GraphScheduler`]).
//!
//! # Simulation backends and their cost models
//!
//! Three exact backends simulate the same Markov chain on count
//! configurations, unified behind the [`simulator::Simulator`] trait so
//! drivers, experiments, the CLI (`--backend {agent,count,batch}`), and
//! benches choose one generically:
//!
//! * [`simulator::AgentSimulator`] tracks every individual agent — the
//!   literal model: O(1) work per interaction, O(n) memory. It is the
//!   ground-truth oracle in equivalence tests and the only backend that
//!   supports graph-restricted schedulers.
//! * [`simulator::CountSimulator`] tracks only the count of agents per state
//!   and samples interacting *states* instead of interacting *agents*.
//!   Because agents are anonymous and the scheduler is uniform, the induced
//!   Markov chain on count configurations is identical; each interaction
//!   costs O(log |Σ|) via Fenwick-tree sampling and memory is O(|Σ|).
//! * [`simulator::BatchSimulator`] leaps over whole collision-free blocks
//!   of ~√n interactions at once: it samples the multinomial split of
//!   ordered state-pairs for the block (multivariate hypergeometric
//!   chains), applies transitions count-wise, and simulates the first
//!   colliding interaction exactly; no-op-dominated phases fall back to
//!   geometric skip-ahead. Work is O(|Σ|² + log n) per block — amortized
//!   **sub-constant time per interaction** — which is what makes n = 10⁸
//!   and beyond feasible. Exact in distribution; stabilization times are
//!   exact to the interaction for protocols whose silent configurations
//!   are monochromatic (see the `simulator::batched` module docs), while
//!   arbitrary stop predicates are evaluated at batch boundaries.
//!
//! * [`simulator::GraphSimulator`] extends the leaping idea to
//!   graph-restricted schedulers: it maintains per-agent states plus an
//!   incrementally-updated Fenwick tree over each edge's *active* (non-no-op)
//!   orientation count, skips geometrically over no-op-dominated stretches,
//!   and pays O(d log m) per **effective** interaction — the fast exact
//!   engine for [`topology`] experiments.
//!
//! Rule of thumb: `agent` for per-agent statistics and as the graph-topology
//! ground truth, `count` for mid-size exact runs and exact stop predicates,
//! `batch` for large-n clique stabilization measurements, `graph` for
//! non-clique topologies at scale.
//!
//! Supporting modules: [`sampling`] (weighted samplers), [`graph`]
//! (interaction graphs), [`topology`] (seeded graph family generators:
//! cycle, torus, hypercube, random regular, Erdős–Rényi, complete),
//! [`stopping`] (stop conditions and the run driver), [`trace`] (snapshot
//! recording), [`observe`] (the backend-agnostic observation layer behind
//! [`Simulator::advance_observed`]), [`telemetry`] (always-on engine
//! counters and gated timing spans behind [`Simulator::telemetry`]), and
//! [`metrics`] (parallel-time conversions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod graph;
pub mod metrics;
pub mod observe;
pub mod protocol;
pub mod sampling;
pub mod scheduler;
pub mod simulator;
pub mod stopping;
pub mod telemetry;
pub mod topology;
pub mod trace;

pub use checkpoint::{CheckpointError, FaultPlan, SnapshotReader, SnapshotWriter};
pub use config::CountConfig;
pub use graph::Graph;
pub use metrics::{interactions_for_parallel_time, parallel_time};
pub use observe::{Observation, SimObserver, StridedObserver};
pub use protocol::{OneWayEpidemic, Protocol};
pub use sampling::{AliasTable, FenwickSampler};
pub use scheduler::{CliqueScheduler, GraphScheduler, Scheduler};
pub use simulator::{
    AgentSimulator, BatchGraphSimulator, BatchSimulator, BitwiseProtocol, CountSimulator,
    GraphSimulator, InteractionRecord, ParGraphSimulator, ReplicaSimulator, Simulator, StateWord,
    WideBatchGraphSimulator,
};
pub use stopping::{RunOutcome, StopReason, Stopper};
pub use telemetry::timeline::{EventHistograms, TimelineRecorder, TimelineSample};
pub use telemetry::{EngineTelemetry, SpanClock, SpanSet, SparseStats};
pub use topology::TopologyFamily;
pub use trace::TraceRecorder;
