//! Engine telemetry: what the *engine* did to simulate the protocol.
//!
//! The paper-facing metrics ([`crate::metrics`]) account for what the
//! protocol did — interactions, parallel time, effective events. This
//! module accounts for what the simulation engine did to produce them:
//! phase transitions, block sizes drawn vs. applied, literal fallbacks,
//! sidecar flushes and their cancel rate, Fenwick updates deferred vs.
//! applied, log-cache hits, and RNG draw events by kind. Every backend
//! owns an [`EngineTelemetry`] and exposes it through
//! [`Simulator::telemetry`](crate::Simulator::telemetry); the counters are
//! monotone over a simulator's lifetime and always on (plain `u64`
//! increments on paths that already do comparable bookkeeping).
//!
//! # Which counters are live where
//!
//! Counters an engine has no mechanism for stay zero — a zero is "not
//! applicable", never "measured zero". The per-backend availability table
//! lives in [`usd_core::backend`](../../usd_core/backend/index.html)
//! (mirroring the observation-granularity table in [`crate::observe`]);
//! the short version: `scheduled`/`effective` are live on all seven
//! backends, the block counters on `batch`/`batchgraph`, the sparse and
//! phase counters on `graph`/`batchgraph`, the draw-kind counters wherever
//! the engine itself performs the draws (the `seq`/`skip` wrappers report
//! totals only).
//!
//! # Time-resolved views
//!
//! The counters here are cumulative; the [`timeline`] submodule resolves
//! them in time. A [`timeline::TimelineRecorder`] samples counter
//! **deltas** at a fixed cadence of the scheduled clock (per-backend
//! cadence-cost table in [`crate::observe`]), and
//! [`timeline::EventHistograms`] bucket the per-event quantities the
//! counters only total — geometric skip lengths, sparse block totals,
//! flush sizes — into log-spaced p50/p90/p99 summaries (per-backend
//! availability alongside the counter table in
//! [`usd_core::backend`](../../usd_core/backend/index.html)).
//!
//! # Timing spans
//!
//! Coarse wall-clock spans ([`SpanSet`]) are measured at advancement
//! boundaries — never per event — behind a double gate: the `span-timing`
//! cargo feature compiles the monotonic clock in ([`SpanClock`] is
//! zero-sized logic without it), and the runtime switch
//! ([`Simulator::set_span_timing`](crate::Simulator::set_span_timing))
//! keeps even the enabled build free of `Instant` reads until a caller
//! asks. With the feature off or the switch off, spans read 0.

pub mod timeline;

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};

/// Counters owned by the shared sparse-phase skipper
/// (`pop_proto::simulator::sparse`), harvested into
/// [`EngineTelemetry::sparse`] by the graph engines at advancement
/// boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseStats {
    /// Effective events drawn by the skipper.
    pub events: u64,
    /// Geometric no-op-skip draw events (one per effective-event attempt).
    pub skip_draws: u64,
    /// Weighted edge-selection draw events (exactly one per event).
    pub event_draws: u64,
    /// Batched sidecar flushes (coalesced Fenwick passes).
    pub flushes: u64,
    /// Weight changes parked in the sidecar (deferred point-updates).
    pub updates_deferred: u64,
    /// Weight changes applied to the tree immediately (deferral bypassed).
    pub updates_immediate: u64,
    /// Sidecar entries written to the tree at flush time.
    pub entries_applied: u64,
    /// Sidecar entries whose weight had toggled back to the tree's value
    /// and were skipped at flush (or evicted early) — the coalescing win.
    pub entries_cancelled: u64,
    /// Geometric inversion constant reused (same `W` as the previous skip).
    pub log_cache_hits: u64,
    /// Inversion constant recomputed (distinct `W`).
    pub log_cache_misses: u64,
    /// Adaptive-deferral transitions into bypass (measured cancel rate too
    /// low for coalescing to pay).
    pub bypass_enters: u64,
    /// Adaptive-deferral probes back into deferral.
    pub bypass_exits: u64,
}

impl SparseStats {
    /// All-zero stats (`const`, for static defaults).
    pub const fn new() -> Self {
        SparseStats {
            events: 0,
            skip_draws: 0,
            event_draws: 0,
            flushes: 0,
            updates_deferred: 0,
            updates_immediate: 0,
            entries_applied: 0,
            entries_cancelled: 0,
            log_cache_hits: 0,
            log_cache_misses: 0,
            bypass_enters: 0,
            bypass_exits: 0,
        }
    }

    /// Accumulate another batch of stats (used when harvesting the
    /// skipper's zeroed-on-take counters into the engine's totals).
    pub fn absorb(&mut self, other: SparseStats) {
        self.events += other.events;
        self.skip_draws += other.skip_draws;
        self.event_draws += other.event_draws;
        self.flushes += other.flushes;
        self.updates_deferred += other.updates_deferred;
        self.updates_immediate += other.updates_immediate;
        self.entries_applied += other.entries_applied;
        self.entries_cancelled += other.entries_cancelled;
        self.log_cache_hits += other.log_cache_hits;
        self.log_cache_misses += other.log_cache_misses;
        self.bypass_enters += other.bypass_enters;
        self.bypass_exits += other.bypass_exits;
    }

    /// Fraction of flush-resolved sidecar entries that had toggled back
    /// (cancelled) before touching the tree — the measured quantity the
    /// adaptive deferral decides on. 0.0 when nothing has been flushed.
    pub fn cancel_rate(&self) -> f64 {
        let resolved = self.entries_applied + self.entries_cancelled;
        if resolved == 0 {
            0.0
        } else {
            self.entries_cancelled as f64 / resolved as f64
        }
    }
}

/// Coarse per-phase wall-clock spans in nanoseconds (see the module docs
/// for the gating; all zero unless span timing is compiled in *and*
/// enabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanSet {
    /// Dense-phase advancement time (literal steps / block scans).
    pub dense_ns: u64,
    /// Sparse-phase advancement time (skipper-driven events).
    pub sparse_ns: u64,
    /// Block gather passes (RNG + endpoint + state gathers).
    pub gather_ns: u64,
    /// Block apply passes (the matching scan / batch application).
    pub apply_ns: u64,
}

impl SpanSet {
    /// All-zero spans (`const`, for static defaults).
    pub const fn new() -> Self {
        SpanSet {
            dense_ns: 0,
            sparse_ns: 0,
            gather_ns: 0,
            apply_ns: 0,
        }
    }
}

/// The feature- and runtime-gated monotonic clock behind [`SpanSet`].
/// Without the `span-timing` cargo feature every method is a no-op that
/// the optimizer deletes; with it, `enabled` still defaults to off so
/// span timing costs nothing until requested.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanClock {
    /// Runtime switch (set through
    /// [`Simulator::set_span_timing`](crate::Simulator::set_span_timing)).
    pub enabled: bool,
}

/// An opaque span start token from [`SpanClock::start`].
#[derive(Debug, Clone, Copy)]
pub struct SpanToken {
    #[cfg(feature = "span-timing")]
    start: Option<std::time::Instant>,
}

impl SpanClock {
    /// A disabled clock (`const`).
    pub const fn new() -> Self {
        SpanClock { enabled: false }
    }

    /// Start a span (reads the monotonic clock only when compiled in and
    /// enabled).
    #[inline]
    pub fn start(&self) -> SpanToken {
        SpanToken {
            #[cfg(feature = "span-timing")]
            start: if self.enabled {
                Some(std::time::Instant::now())
            } else {
                None
            },
        }
    }

    /// Nanoseconds since `token` was started (0 when timing is off).
    #[inline]
    pub fn elapsed_ns(&self, token: SpanToken) -> u64 {
        #[cfg(feature = "span-timing")]
        let ns = token
            .start
            .map(|t| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        #[cfg(not(feature = "span-timing"))]
        let ns = {
            let _ = token;
            0
        };
        ns
    }
}

/// Monotone instrumentation counters one simulation engine populates over
/// its lifetime, plus the coarse timing spans. See the module docs for
/// which counters are live on which backend; every counter is a *count of
/// engine actions*, exactly defined at its increment site.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineTelemetry {
    /// Scheduled interactions simulated — always equals the engine's
    /// interaction clock (`Simulator::interactions`), pinned by test.
    pub scheduled: u64,
    /// Effective (configuration-changing) interactions — always equals
    /// `Simulator::effective_interactions`, pinned by test.
    pub effective: u64,
    /// Literal one-at-a-time steps (per-event engines count every
    /// interaction here; block engines only their literal `step()` calls).
    pub dense_steps: u64,
    /// Dense blocks / batches launched (chunk scans, clique batches).
    pub blocks: u64,
    /// Scheduled draws processed through blocks (block sizes *drawn*).
    pub block_draws: u64,
    /// Clean block applications (matching members / collision-free batch
    /// events — block work *applied* from block-start state).
    pub block_applied: u64,
    /// Literal fallbacks inside blocks: dirty-endpoint draws re-simulated
    /// from current states (`batchgraph`), collision interactions stepped
    /// literally (`batch`).
    pub fallback_literal: u64,
    /// Dense → sparse phase escalations.
    pub sparse_enters: u64,
    /// Sparse → dense phase hand-backs (activity recovered).
    pub sparse_exits: u64,
    /// Pair/edge-selection draw events in the dense phase (one per
    /// scheduled pair or block draw).
    pub pair_draws: u64,
    /// Geometric skip draw events performed by the engine itself (the
    /// clique engines' no-op leaps; sparse-phase skips are counted in
    /// [`EngineTelemetry::sparse`]).
    pub skip_draws: u64,
    /// Batched table draws (hypergeometric rows / binomial splits sampled
    /// per batch).
    pub table_draws: u64,
    /// Sparse-phase skipper counters (harvested; see [`SparseStats`]).
    pub sparse: SparseStats,
    /// Coarse per-phase wall-clock spans (gated; see [`SpanSet`]).
    pub spans: SpanSet,
    /// The gated clock the engine stamps spans with.
    pub clock: SpanClock,
}

/// The shared all-zero telemetry returned by the default
/// [`Simulator::telemetry`](crate::Simulator::telemetry) for engines that
/// predate (or opt out of) instrumentation.
static DISABLED: EngineTelemetry = EngineTelemetry::new();

impl EngineTelemetry {
    /// All-zero counters with a disabled clock (`const`).
    pub const fn new() -> Self {
        EngineTelemetry {
            scheduled: 0,
            effective: 0,
            dense_steps: 0,
            blocks: 0,
            block_draws: 0,
            block_applied: 0,
            fallback_literal: 0,
            sparse_enters: 0,
            sparse_exits: 0,
            pair_draws: 0,
            skip_draws: 0,
            table_draws: 0,
            sparse: SparseStats::new(),
            spans: SpanSet::new(),
            clock: SpanClock::new(),
        }
    }

    /// The static all-zero instance (default trait implementation).
    pub fn disabled() -> &'static EngineTelemetry {
        &DISABLED
    }

    /// Counter-wise difference `self − earlier` over every monotone
    /// counter (the two snapshots must come from the same engine, with
    /// `earlier` taken first — each subtraction would underflow
    /// otherwise). Spans subtract too; the clock carries over from
    /// `self`. This is the windowed view the flight recorder
    /// ([`timeline::TimelineRecorder`]) samples: rates computed on a
    /// delta describe *that window*, not the run so far.
    pub fn delta(&self, earlier: &EngineTelemetry) -> EngineTelemetry {
        let mut out = *self;
        out.scheduled -= earlier.scheduled;
        out.effective -= earlier.effective;
        out.dense_steps -= earlier.dense_steps;
        out.blocks -= earlier.blocks;
        out.block_draws -= earlier.block_draws;
        out.block_applied -= earlier.block_applied;
        out.fallback_literal -= earlier.fallback_literal;
        out.sparse_enters -= earlier.sparse_enters;
        out.sparse_exits -= earlier.sparse_exits;
        out.pair_draws -= earlier.pair_draws;
        out.skip_draws -= earlier.skip_draws;
        out.table_draws -= earlier.table_draws;
        out.sparse.events -= earlier.sparse.events;
        out.sparse.skip_draws -= earlier.sparse.skip_draws;
        out.sparse.event_draws -= earlier.sparse.event_draws;
        out.sparse.flushes -= earlier.sparse.flushes;
        out.sparse.updates_deferred -= earlier.sparse.updates_deferred;
        out.sparse.updates_immediate -= earlier.sparse.updates_immediate;
        out.sparse.entries_applied -= earlier.sparse.entries_applied;
        out.sparse.entries_cancelled -= earlier.sparse.entries_cancelled;
        out.sparse.log_cache_hits -= earlier.sparse.log_cache_hits;
        out.sparse.log_cache_misses -= earlier.sparse.log_cache_misses;
        out.sparse.bypass_enters -= earlier.sparse.bypass_enters;
        out.sparse.bypass_exits -= earlier.sparse.bypass_exits;
        out.spans.dense_ns -= earlier.spans.dense_ns;
        out.spans.sparse_ns -= earlier.spans.sparse_ns;
        out.spans.gather_ns -= earlier.spans.gather_ns;
        out.spans.apply_ns -= earlier.spans.apply_ns;
        out
    }

    /// Effective fraction of the schedule: `effective / scheduled`
    /// (0.0 before any interaction).
    pub fn effective_fraction(&self) -> f64 {
        if self.scheduled == 0 {
            0.0
        } else {
            self.effective as f64 / self.scheduled as f64
        }
    }

    /// Sidecar cancel rate at flush time (see [`SparseStats::cancel_rate`]).
    pub fn cancel_rate(&self) -> f64 {
        self.sparse.cancel_rate()
    }

    /// Fraction of block-phase applications that fell back to a literal
    /// step: `fallback_literal / (block_applied + fallback_literal)`
    /// (0.0 when no block work ran).
    pub fn fallback_rate(&self) -> f64 {
        let applied = self.block_applied + self.fallback_literal;
        if applied == 0 {
            0.0
        } else {
            self.fallback_literal as f64 / applied as f64
        }
    }

    /// Serialize every counter, the sparse sub-block, the spans, and the
    /// clock switch into a checkpoint body (fixed field order; the inverse
    /// of [`EngineTelemetry::read_snapshot`]).
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        for v in [
            self.scheduled,
            self.effective,
            self.dense_steps,
            self.blocks,
            self.block_draws,
            self.block_applied,
            self.fallback_literal,
            self.sparse_enters,
            self.sparse_exits,
            self.pair_draws,
            self.skip_draws,
            self.table_draws,
            self.sparse.events,
            self.sparse.skip_draws,
            self.sparse.event_draws,
            self.sparse.flushes,
            self.sparse.updates_deferred,
            self.sparse.updates_immediate,
            self.sparse.entries_applied,
            self.sparse.entries_cancelled,
            self.sparse.log_cache_hits,
            self.sparse.log_cache_misses,
            self.sparse.bypass_enters,
            self.sparse.bypass_exits,
            self.spans.dense_ns,
            self.spans.sparse_ns,
            self.spans.gather_ns,
            self.spans.apply_ns,
        ] {
            w.put_u64(v);
        }
        w.put_bool(self.clock.enabled);
    }

    /// Deserialize a telemetry block written by
    /// [`EngineTelemetry::write_snapshot`].
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<EngineTelemetry, CheckpointError> {
        let mut t = EngineTelemetry::new();
        for slot in [
            &mut t.scheduled,
            &mut t.effective,
            &mut t.dense_steps,
            &mut t.blocks,
            &mut t.block_draws,
            &mut t.block_applied,
            &mut t.fallback_literal,
            &mut t.sparse_enters,
            &mut t.sparse_exits,
            &mut t.pair_draws,
            &mut t.skip_draws,
            &mut t.table_draws,
            &mut t.sparse.events,
            &mut t.sparse.skip_draws,
            &mut t.sparse.event_draws,
            &mut t.sparse.flushes,
            &mut t.sparse.updates_deferred,
            &mut t.sparse.updates_immediate,
            &mut t.sparse.entries_applied,
            &mut t.sparse.entries_cancelled,
            &mut t.sparse.log_cache_hits,
            &mut t.sparse.log_cache_misses,
            &mut t.sparse.bypass_enters,
            &mut t.sparse.bypass_exits,
            &mut t.spans.dense_ns,
            &mut t.spans.sparse_ns,
            &mut t.spans.gather_ns,
            &mut t.spans.apply_ns,
        ] {
            *slot = r.get_u64()?;
        }
        t.clock.enabled = r.get_bool()?;
        Ok(t)
    }

    /// Schema-stable JSON object (fixed key order; counters, sub-objects
    /// `sparse` and `spans`, then the derived `rates`). The run-report
    /// surface of the CLI, `topology_sweep`, and `bench_backends`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scheduled\":{},\"effective\":{},\"dense_steps\":{},\
             \"blocks\":{},\"block_draws\":{},\"block_applied\":{},\
             \"fallback_literal\":{},\"sparse_enters\":{},\"sparse_exits\":{},\
             \"pair_draws\":{},\"skip_draws\":{},\"table_draws\":{},\
             \"sparse\":{{\"events\":{},\"skip_draws\":{},\"event_draws\":{},\
             \"flushes\":{},\"updates_deferred\":{},\"updates_immediate\":{},\
             \"entries_applied\":{},\"entries_cancelled\":{},\
             \"log_cache_hits\":{},\"log_cache_misses\":{},\
             \"bypass_enters\":{},\"bypass_exits\":{}}},\
             \"spans\":{{\"dense_ns\":{},\"sparse_ns\":{},\"gather_ns\":{},\
             \"apply_ns\":{}}},\
             \"rates\":{{\"effective_fraction\":{:.6},\"cancel_rate\":{:.6},\
             \"fallback_rate\":{:.6}}}}}",
            self.scheduled,
            self.effective,
            self.dense_steps,
            self.blocks,
            self.block_draws,
            self.block_applied,
            self.fallback_literal,
            self.sparse_enters,
            self.sparse_exits,
            self.pair_draws,
            self.skip_draws,
            self.table_draws,
            self.sparse.events,
            self.sparse.skip_draws,
            self.sparse.event_draws,
            self.sparse.flushes,
            self.sparse.updates_deferred,
            self.sparse.updates_immediate,
            self.sparse.entries_applied,
            self.sparse.entries_cancelled,
            self.sparse.log_cache_hits,
            self.sparse.log_cache_misses,
            self.sparse.bypass_enters,
            self.sparse.bypass_exits,
            self.spans.dense_ns,
            self.spans.sparse_ns,
            self.spans.gather_ns,
            self.spans.apply_ns,
            self.effective_fraction(),
            self.cancel_rate(),
            self.fallback_rate(),
        )
    }

    /// Human-readable aligned table (the CLI's `--telemetry` /
    /// `--telemetry=table` rendering). Zero-valued counter groups an
    /// engine has no mechanism for are omitted; the derived rates always
    /// print.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: u64| {
            out.push_str(&format!("  {k:<24} {v}\n"));
        };
        line("scheduled", self.scheduled);
        line("effective", self.effective);
        line("dense_steps", self.dense_steps);
        if self.blocks > 0 {
            line("blocks", self.blocks);
            line("block_draws", self.block_draws);
            line("block_applied", self.block_applied);
            line("fallback_literal", self.fallback_literal);
        }
        if self.pair_draws + self.skip_draws + self.table_draws > 0 {
            line("pair_draws", self.pair_draws);
            line("skip_draws", self.skip_draws);
            line("table_draws", self.table_draws);
        }
        if self.sparse_enters > 0 || self.sparse.events > 0 {
            line("sparse_enters", self.sparse_enters);
            line("sparse_exits", self.sparse_exits);
            line("sparse.events", self.sparse.events);
            line("sparse.skip_draws", self.sparse.skip_draws);
            line("sparse.event_draws", self.sparse.event_draws);
            line("sparse.flushes", self.sparse.flushes);
            line("sparse.updates_deferred", self.sparse.updates_deferred);
            line("sparse.updates_immediate", self.sparse.updates_immediate);
            line("sparse.entries_applied", self.sparse.entries_applied);
            line("sparse.entries_cancelled", self.sparse.entries_cancelled);
            line("sparse.log_cache_hits", self.sparse.log_cache_hits);
            line("sparse.log_cache_misses", self.sparse.log_cache_misses);
            line("sparse.bypass_enters", self.sparse.bypass_enters);
            line("sparse.bypass_exits", self.sparse.bypass_exits);
        }
        if self.spans != SpanSet::new() {
            line("spans.dense_ns", self.spans.dense_ns);
            line("spans.sparse_ns", self.spans.sparse_ns);
            line("spans.gather_ns", self.spans.gather_ns);
            line("spans.apply_ns", self.spans.apply_ns);
        }
        out.push_str(&format!(
            "  {:<24} {:.6}\n  {:<24} {:.6}\n  {:<24} {:.6}\n",
            "effective_fraction",
            self.effective_fraction(),
            "cancel_rate",
            self.cancel_rate(),
            "fallback_rate",
            self.fallback_rate(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_all_zero() {
        let t = EngineTelemetry::disabled();
        assert_eq!(t.scheduled, 0);
        assert_eq!(t.effective_fraction(), 0.0);
        assert_eq!(t.cancel_rate(), 0.0);
        assert_eq!(t.fallback_rate(), 0.0);
    }

    #[test]
    fn rates_compute_from_counters() {
        let mut t = EngineTelemetry::new();
        t.scheduled = 200;
        t.effective = 50;
        t.block_applied = 40;
        t.fallback_literal = 10;
        t.sparse.entries_applied = 30;
        t.sparse.entries_cancelled = 90;
        assert_eq!(t.effective_fraction(), 0.25);
        assert_eq!(t.fallback_rate(), 0.2);
        assert_eq!(t.cancel_rate(), 0.75);
    }

    #[test]
    fn json_is_schema_stable_and_self_describing() {
        let mut t = EngineTelemetry::new();
        t.scheduled = 7;
        t.effective = 3;
        let j = t.to_json();
        for key in [
            "\"scheduled\":7",
            "\"effective\":3",
            "\"sparse\":{",
            "\"spans\":{",
            "\"rates\":{",
            "\"effective_fraction\":",
            "\"cancel_rate\":",
            "\"fallback_rate\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Balanced braces: the object must nest cleanly for downstream
        // hand-rolled parsers.
        let mut depth = 0i32;
        for c in j.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "unbalanced braces in {j}");
    }

    #[test]
    fn delta_subtracts_every_counter() {
        let mut earlier = EngineTelemetry::new();
        earlier.scheduled = 100;
        earlier.effective = 40;
        earlier.sparse.events = 7;
        earlier.spans.dense_ns = 5;
        let mut later = earlier;
        later.scheduled = 250;
        later.effective = 90;
        later.sparse.events = 11;
        later.spans.dense_ns = 9;
        let d = later.delta(&earlier);
        assert_eq!(d.scheduled, 150);
        assert_eq!(d.effective, 50);
        assert_eq!(d.sparse.events, 4);
        assert_eq!(d.spans.dense_ns, 4);
        // Delta against itself is all-zero; delta against zero is identity.
        let z = later.delta(&later);
        assert_eq!(z.scheduled, 0);
        assert_eq!(z.sparse.events, 0);
        let id = later.delta(&EngineTelemetry::new());
        assert_eq!(id.scheduled, later.scheduled);
        assert_eq!(id.sparse.events, later.sparse.events);
    }

    #[test]
    fn sparse_stats_absorb_accumulates() {
        let mut a = SparseStats::new();
        let mut b = SparseStats::new();
        a.events = 5;
        a.entries_cancelled = 2;
        b.events = 7;
        b.entries_applied = 4;
        a.absorb(b);
        assert_eq!(a.events, 12);
        assert_eq!(a.entries_applied, 4);
        assert_eq!(a.entries_cancelled, 2);
    }

    #[test]
    fn span_clock_disabled_reads_zero() {
        let clock = SpanClock::new();
        let t = clock.start();
        assert_eq!(clock.elapsed_ns(t), 0);
    }

    #[test]
    fn table_renders_rates() {
        let mut t = EngineTelemetry::new();
        t.scheduled = 10;
        t.effective = 5;
        let s = t.table();
        assert!(s.contains("scheduled"));
        assert!(s.contains("effective_fraction"));
        // Block/sparse groups absent when all-zero.
        assert!(!s.contains("block_draws"));
        assert!(!s.contains("sparse.flushes"));
    }
}
