//! Snapshot recording of simulation trajectories.
//!
//! A [`TraceRecorder`] captures the count configuration every `every`
//! interactions (typically every parallel round, i.e. every `n`
//! interactions), producing the data behind Figure-1-style plots without
//! storing all ~10⁸ intermediate configurations.

use sim_stats::timeseries::{Series, TimeSeries};

/// Records count-configuration snapshots at a fixed interaction cadence.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    every: u64,
    next_at: u64,
    times: Vec<u64>,
    snapshots: Vec<Vec<u64>>,
}

impl TraceRecorder {
    /// Record every `every ≥ 1` interactions (and at interaction 0).
    pub fn new(every: u64) -> Self {
        assert!(every >= 1, "cadence must be at least 1");
        TraceRecorder {
            every,
            next_at: 0,
            times: Vec::new(),
            snapshots: Vec::new(),
        }
    }

    /// Offer the current state; records it if `interactions` has reached the
    /// next capture point. Call after every step (cheap when not due).
    #[inline]
    pub fn offer(&mut self, interactions: u64, counts: &[u64]) {
        if interactions >= self.next_at {
            self.times.push(interactions);
            self.snapshots.push(counts.to_vec());
            self.next_at = interactions + self.every;
        }
    }

    /// Force-record the current state regardless of cadence (used for the
    /// final configuration of a run).
    pub fn force(&mut self, interactions: u64, counts: &[u64]) {
        if self.times.last() == Some(&interactions) {
            return; // already captured this instant
        }
        self.times.push(interactions);
        self.snapshots.push(counts.to_vec());
        self.next_at = interactions + self.every;
    }

    /// Captured interaction counts.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// Captured snapshots (parallel to [`TraceRecorder::times`]).
    pub fn snapshots(&self) -> &[Vec<u64>] {
        &self.snapshots
    }

    /// Number of snapshots captured.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no snapshot has been captured.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Convert to a [`TimeSeries`] with one series per state, the time axis
    /// in parallel time (interactions / n), and series named by
    /// `state_name(index)`.
    pub fn to_timeseries(&self, n: u64, state_name: impl Fn(usize) -> String) -> TimeSeries {
        let mut ts =
            TimeSeries::with_time(self.times.iter().map(|&t| t as f64 / n as f64).collect());
        if self.snapshots.is_empty() {
            return ts;
        }
        let num_states = self.snapshots[0].len();
        for s in 0..num_states {
            let values = self.snapshots.iter().map(|snap| snap[s] as f64).collect();
            ts.push_series(Series::new(state_name(s), values));
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_on_cadence() {
        let mut r = TraceRecorder::new(10);
        for t in 0..35 {
            r.offer(t, &[t, 100 - t]);
        }
        assert_eq!(r.times(), &[0, 10, 20, 30]);
        assert_eq!(r.snapshots()[2], vec![20, 80]);
    }

    #[test]
    fn force_captures_final_state_once() {
        let mut r = TraceRecorder::new(10);
        r.offer(0, &[5]);
        r.force(7, &[3]);
        r.force(7, &[3]); // duplicate ignored
        assert_eq!(r.times(), &[0, 7]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn timeseries_conversion() {
        let mut r = TraceRecorder::new(5);
        r.offer(0, &[10, 0]);
        r.offer(5, &[8, 2]);
        r.offer(10, &[5, 5]);
        let ts = r.to_timeseries(10, |i| format!("state{i}"));
        assert_eq!(ts.time, vec![0.0, 0.5, 1.0]);
        assert_eq!(ts.get("state0").unwrap().values, vec![10.0, 8.0, 5.0]);
        assert_eq!(ts.get("state1").unwrap().values, vec![0.0, 2.0, 5.0]);
    }

    #[test]
    fn empty_recorder_converts_to_empty_timeseries() {
        let r = TraceRecorder::new(1);
        assert!(r.is_empty());
        let ts = r.to_timeseries(10, |i| format!("{i}"));
        assert!(ts.is_empty());
    }

    #[test]
    fn offer_skips_between_cadence_points() {
        let mut r = TraceRecorder::new(100);
        r.offer(0, &[1]);
        r.offer(50, &[2]);
        r.offer(99, &[3]);
        r.offer(100, &[4]);
        assert_eq!(r.times(), &[0, 100]);
    }
}
