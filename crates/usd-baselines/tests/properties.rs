//! Property-based tests for the baseline protocols.

use proptest::prelude::*;
use sim_stats::rng::SimRng;
use usd_baselines::{
    FourStateMajority, GossipUsd, SynchronizedUsd, ThreeMajority, TournamentUsd, VoterDynamics,
};
use usd_core::UsdConfig;

fn decided_config(k: usize) -> impl Strategy<Value = UsdConfig> {
    proptest::collection::vec(0u64..40, k)
        .prop_filter("need n >= 3", |x| x.iter().sum::<u64>() >= 3)
        .prop_map(UsdConfig::decided)
}

fn mixed_config(k: usize) -> impl Strategy<Value = UsdConfig> {
    (proptest::collection::vec(0u64..40, k), 0u64..40)
        .prop_filter("need n >= 3", |(x, u)| x.iter().sum::<u64>() + u >= 3)
        .prop_map(|(x, u)| UsdConfig::new(x, u))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gossip USD conserves the population and only moves states within
    /// the legal USD transitions each round.
    #[test]
    fn gossip_usd_round_invariants(
        config in (2usize..5).prop_flat_map(mixed_config),
        seed in any::<u64>(),
    ) {
        let n = config.n();
        let mut sim = GossipUsd::new(&config);
        let mut rng = SimRng::new(seed);
        for _ in 0..10 {
            let flips = sim.round(&mut rng);
            prop_assert!(flips <= n);
            prop_assert_eq!(sim.config().n(), n);
        }
    }

    /// Synchronized USD conserves the population across matched rounds.
    #[test]
    fn synchronized_usd_round_invariants(
        config in (2usize..5).prop_flat_map(mixed_config),
        seed in any::<u64>(),
    ) {
        let n = config.n();
        let mut sim = SynchronizedUsd::new(&config);
        let mut rng = SimRng::new(seed);
        for _ in 0..10 {
            sim.round(&mut rng);
            prop_assert_eq!(sim.config().n(), n);
        }
    }

    /// 3-majority conserves the population and never invents opinions.
    #[test]
    fn three_majority_round_invariants(
        config in (2usize..5).prop_flat_map(decided_config),
        seed in any::<u64>(),
    ) {
        let n = config.n();
        let initially_present: Vec<bool> =
            config.opinions().iter().map(|&c| c > 0).collect();
        let mut sim = ThreeMajority::new(&config);
        let mut rng = SimRng::new(seed);
        for _ in 0..10 {
            sim.round(&mut rng);
            let now = sim.config();
            prop_assert_eq!(now.n(), n);
            for (i, &present) in initially_present.iter().enumerate() {
                if !present {
                    prop_assert_eq!(now.x(i), 0, "opinion {} appeared from nothing", i);
                }
            }
        }
    }

    /// The tournament always terminates with a winner that had initial
    /// support, and never runs more than ceil(log2 k) phases.
    #[test]
    fn tournament_terminates_with_supported_winner(
        config in (2usize..6).prop_flat_map(decided_config),
        seed in any::<u64>(),
    ) {
        let support: Vec<usize> = config
            .opinions()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!support.is_empty());
        let t = TournamentUsd::new(config.clone());
        let mut rng = SimRng::new(seed);
        let result = t.run(&mut rng);
        let winner = result.winner.expect("tournament must produce a winner");
        prop_assert!(support.contains(&winner), "winner {} had no support", winner);
        let max_phases = (support.len() as f64).log2().ceil() as u64;
        prop_assert!(result.phases <= max_phases.max(1));
    }

    /// Voter dynamics: the initiator always wins the interaction.
    #[test]
    fn voter_transition_initiator_wins(k in 1usize..8, a in 0usize..8, b in 0usize..8) {
        use pop_proto::Protocol;
        prop_assume!(a < k && b < k);
        let p = VoterDynamics::new(k);
        prop_assert_eq!(p.transition_indices(a, b), (a, a));
    }

    /// Four-state: the signed token sum is conserved by every transition,
    /// and outputs partition the states into the two sides.
    #[test]
    fn four_state_transition_invariants(a in 0usize..4, b in 0usize..4) {
        use pop_proto::Protocol;
        let p = FourStateMajority;
        let (ta, tb) = p.transition_indices(a, b);
        let value = |s: usize| match s {
            FourStateMajority::STRONG_A => 1i64,
            FourStateMajority::STRONG_B => -1,
            _ => 0,
        };
        prop_assert_eq!(value(a) + value(b), value(ta) + value(tb));
    }
}
