//! Voter dynamics: the no-undecided-state control.
//!
//! When two agents meet, the responder adopts the initiator's opinion.
//! Always reaches consensus, but the consensus opinion is a martingale
//! draw proportional to initial support (each opinion wins with
//! probability xᵢ(0)/n), and the expected stabilization time is Θ(n²)
//! interactions — both in sharp contrast with USD. The experiment suite
//! uses it to show what the undecided state buys.

use pop_proto::Protocol;

/// Voter dynamics over `k` opinions (no undecided state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoterDynamics {
    k: usize,
}

impl VoterDynamics {
    /// Voter dynamics with `k ≥ 1` opinions.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one opinion");
        VoterDynamics { k }
    }

    /// Number of opinions.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Protocol for VoterDynamics {
    type State = usize;
    type Output = usize;

    fn num_states(&self) -> usize {
        self.k
    }

    fn index_of(&self, s: usize) -> usize {
        assert!(s < self.k, "opinion {s} out of range");
        s
    }

    fn state_of(&self, index: usize) -> usize {
        assert!(index < self.k, "opinion {index} out of range");
        index
    }

    fn transition(&self, initiator: usize, _responder: usize) -> (usize, usize) {
        // Responder adopts the initiator's opinion.
        (initiator, initiator)
    }

    fn output(&self, s: usize) -> usize {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_proto::{CountConfig, CountSimulator};
    use sim_stats::rng::SimRng;

    #[test]
    fn always_reaches_consensus() {
        for seed in 0..5 {
            let mut sim = CountSimulator::new(
                VoterDynamics::new(3),
                &CountConfig::from_counts(vec![20, 15, 15]),
            );
            let mut rng = SimRng::new(seed);
            sim.run(&mut rng, 10_000_000, |s| s.is_silent());
            assert!(sim.is_silent());
            assert!(sim.config().consensus_state().is_some());
        }
    }

    #[test]
    fn win_probability_proportional_to_initial_support() {
        // Opinion 0 holds 3/4 of the population: it should win ≈ 75% of
        // runs (martingale property of voter dynamics).
        let reps = 400u64;
        let mut wins = 0u64;
        for seed in 0..reps {
            let mut sim = CountSimulator::new(
                VoterDynamics::new(2),
                &CountConfig::from_counts(vec![30, 10]),
            );
            let mut rng = SimRng::new(seed);
            sim.run(&mut rng, 10_000_000, |s| s.is_silent());
            if sim.config().consensus_state() == Some(0) {
                wins += 1;
            }
        }
        let frac = wins as f64 / reps as f64;
        assert!((frac - 0.75).abs() < 0.07, "win fraction {frac}");
    }

    #[test]
    fn transition_is_initiator_wins() {
        let p = VoterDynamics::new(4);
        assert_eq!(p.transition(2, 3), (2, 2));
        assert_eq!(p.transition(3, 3), (3, 3));
    }

    #[test]
    fn minority_can_win() {
        // Unlike exact majority: with 25% support, opinion 1 must win a
        // noticeable fraction of runs.
        let reps = 300u64;
        let mut minority_wins = 0u64;
        for seed in 0..reps {
            let mut sim = CountSimulator::new(
                VoterDynamics::new(2),
                &CountConfig::from_counts(vec![30, 10]),
            );
            let mut rng = SimRng::new(seed + 1_000);
            sim.run(&mut rng, 10_000_000, |s| s.is_silent());
            if sim.config().consensus_state() == Some(1) {
                minority_wins += 1;
            }
        }
        let frac = minority_wins as f64 / reps as f64;
        assert!(frac > 0.1, "minority win fraction {frac} suspiciously low");
    }

    #[test]
    fn single_opinion_is_silent_immediately() {
        let sim = CountSimulator::new(
            VoterDynamics::new(2),
            &CountConfig::from_counts(vec![10, 0]),
        );
        assert!(sim.is_silent());
    }
}
