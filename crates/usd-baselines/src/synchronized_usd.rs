//! Matching-based synchronous USD.
//!
//! A synchronous variant in the spirit of the synchronized undecided-state
//! dynamics of Bankhamer et al. (SODA '22): each round draws a uniformly
//! random perfect matching of the agents (one unmatched agent if n is odd)
//! and applies the USD pairwise transition to every matched pair
//! simultaneously. Every agent participates in exactly one interaction per
//! round — the synchronization that the population-protocol scheduler
//! lacks, and one of the model differences the paper's §1.2 discusses.

use sim_stats::rng::SimRng;
use usd_core::UsdConfig;

/// Synchronous matching-based USD simulator.
#[derive(Debug, Clone)]
pub struct SynchronizedUsd {
    /// Per-node state: opinion in `0..k`, or `k` = undecided.
    states: Vec<u32>,
    /// Scratch permutation reused across rounds.
    perm: Vec<u32>,
    k: usize,
    rounds: u64,
}

impl SynchronizedUsd {
    /// Initialize from a configuration.
    pub fn new(config: &UsdConfig) -> Self {
        assert!(config.n() >= 2, "need at least 2 agents");
        assert!(config.n() <= u32::MAX as u64, "population too large");
        let k = config.k();
        let mut states = Vec::with_capacity(config.n() as usize);
        for (i, &c) in config.opinions().iter().enumerate() {
            states.extend(std::iter::repeat_n(i as u32, c as usize));
        }
        states.extend(std::iter::repeat_n(k as u32, config.u() as usize));
        let perm = (0..states.len() as u32).collect();
        SynchronizedUsd {
            states,
            perm,
            k,
            rounds: 0,
        }
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        self.states.len() as u64
    }

    /// Rounds simulated.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Current configuration (O(n) tally).
    pub fn config(&self) -> UsdConfig {
        let mut x = vec![0u64; self.k];
        let mut u = 0u64;
        for &s in &self.states {
            if (s as usize) < self.k {
                x[s as usize] += 1;
            } else {
                u += 1;
            }
        }
        UsdConfig::new(x, u)
    }

    /// Whether every agent holds the same state.
    pub fn is_silent(&self) -> bool {
        let first = self.states[0];
        self.states.iter().all(|&s| s == first)
    }

    /// The consensus winner, if stabilized on an opinion.
    pub fn winner(&self) -> Option<usize> {
        let first = self.states[0];
        ((first as usize) < self.k && self.is_silent()).then_some(first as usize)
    }

    /// Run one matched round: shuffle, pair adjacent entries, apply USD.
    pub fn round(&mut self, rng: &mut SimRng) {
        rng.shuffle(&mut self.perm);
        let undecided = self.k as u32;
        for pair in self.perm.chunks_exact(2) {
            let (i, j) = (pair[0] as usize, pair[1] as usize);
            let (a, b) = (self.states[i], self.states[j]);
            if a == b {
                continue;
            }
            if a == undecided {
                self.states[i] = b;
            } else if b == undecided {
                self.states[j] = a;
            } else {
                self.states[i] = undecided;
                self.states[j] = undecided;
            }
        }
        self.rounds += 1;
    }

    /// Run until silent or `max_rounds`; returns `(rounds_run, silent)`.
    pub fn run(&mut self, rng: &mut SimRng, max_rounds: u64) -> (u64, bool) {
        let start = self.rounds;
        while self.rounds - start < max_rounds {
            if self.is_silent() {
                return (self.rounds - start, true);
            }
            self.round(rng);
        }
        (self.rounds - start, self.is_silent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_conserves_population() {
        let mut sim = SynchronizedUsd::new(&UsdConfig::decided(vec![40, 30, 30]));
        let mut rng = SimRng::new(1);
        for _ in 0..20 {
            sim.round(&mut rng);
            assert_eq!(sim.config().n(), 100);
        }
    }

    #[test]
    fn stabilizes_to_majority_with_bias() {
        let mut wins = 0;
        for seed in 0..10 {
            let mut sim = SynchronizedUsd::new(&UsdConfig::decided(vec![700, 300]));
            let mut rng = SimRng::new(seed);
            let (_, silent) = sim.run(&mut rng, 10_000);
            assert!(silent, "did not stabilize (seed {seed})");
            if sim.winner() == Some(0) {
                wins += 1;
            }
        }
        assert!(wins >= 9, "majority won only {wins}/10");
    }

    #[test]
    fn everyone_interacts_once_per_round() {
        // Structural: with all agents decided on two opinions and an even
        // split, one round with a "perfect anti-matching" can flip everyone;
        // at minimum, the number of agents that changed state in one round
        // can exceed n/2 — impossible in n sequential PP interactions that
        // involve ≤ 2 distinct agents each... just verify state-change
        // count is bounded by n and population is conserved.
        let mut sim = SynchronizedUsd::new(&UsdConfig::decided(vec![500, 500]));
        let before = sim.states.clone();
        let mut rng = SimRng::new(2);
        sim.round(&mut rng);
        let changed = before
            .iter()
            .zip(&sim.states)
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed <= 1000);
        assert!(changed > 0, "a balanced round should produce clashes");
        assert_eq!(sim.config().n(), 1000);
    }

    #[test]
    fn odd_population_leaves_one_unmatched() {
        let mut sim = SynchronizedUsd::new(&UsdConfig::decided(vec![3, 2]));
        let mut rng = SimRng::new(3);
        sim.round(&mut rng); // must not panic; 5 agents → 2 pairs + 1 idle
        assert_eq!(sim.config().n(), 5);
    }

    #[test]
    fn all_undecided_absorbing() {
        let mut sim = SynchronizedUsd::new(&UsdConfig::new(vec![0, 0], 10));
        let mut rng = SimRng::new(4);
        assert!(sim.is_silent());
        sim.round(&mut rng);
        assert_eq!(sim.config().u(), 10);
        assert_eq!(sim.winner(), None);
    }

    #[test]
    fn k2_stabilization_round_count_is_logarithmic_scale() {
        // With strong bias the synchronized USD stabilizes in O(log n)
        // rounds; allow a generous constant.
        let n = 4_096u64;
        let mut sim = SynchronizedUsd::new(&UsdConfig::decided(vec![3 * n / 4, n / 4]));
        let mut rng = SimRng::new(5);
        let (rounds, silent) = sim.run(&mut rng, 100_000);
        assert!(silent);
        assert!(
            (rounds as f64) < 40.0 * (n as f64).ln(),
            "rounds {rounds} not O(log n) scale"
        );
    }
}
