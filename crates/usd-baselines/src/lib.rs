//! Baseline consensus protocols from the paper's related-work landscape
//! (§1.2), for head-to-head comparison with the Undecided State Dynamics.
//!
//! * [`four_state`] — the 4-state **exact majority** protocol studied by
//!   Draief–Vojnović (INFOCOM '10) and Mertzios et al. (ICALP '14):
//!   always-correct for k = 2 but polynomially slow without a large bias;
//! * [`voter`] — voter dynamics (adopt the partner's opinion), the
//!   no-undecided-state control with Θ(n²) expected stabilization;
//! * [`three_majority`] — 3-majority dynamics in the synchronous Gossip
//!   model, the classic plurality-consensus comparison point;
//! * [`gossip_usd`] — the USD run in the **Gossip model** (each round every
//!   node pulls one uniformly random other node), whose qualitative
//!   differences from the population-protocol USD the paper highlights,
//!   with the monochromatic-distance tracking of Becchetti et al.;
//! * [`synchronized_usd`] — a matching-based synchronous USD variant in
//!   the spirit of the synchronized dynamics of Bankhamer et al.
//!   (SODA '22);
//! * [`tournament`] — an idealized elimination-tournament USD with
//!   perfect phase synchronization and O(log k) extra state, whose
//!   growth law is O(log k · log n) — below the lower-bound barrier in
//!   shape; experiment E13 quantifies what that buys at simulable scales
//!   (the §4 open question).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod four_state;
pub mod gossip_usd;
pub mod synchronized_usd;
pub mod three_majority;
pub mod tournament;
pub mod voter;

pub use four_state::{FourState, FourStateMajority, MajoritySide};
pub use gossip_usd::GossipUsd;
pub use synchronized_usd::SynchronizedUsd;
pub use three_majority::ThreeMajority;
pub use tournament::{TournamentResult, TournamentUsd};
pub use voter::VoterDynamics;
