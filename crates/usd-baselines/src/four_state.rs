//! The 4-state exact-majority population protocol.
//!
//! Studied (in nearly identical form) by Draief & Vojnović (INFOCOM '10)
//! and Mertzios et al. (ICALP '14). States: two *strong* opinions `A`, `B`
//! and two *weak* ones `a`, `b`. Writing the signed token value
//! v(A) = +1, v(B) = −1, v(a) = v(b) = 0, the transitions are
//!
//! * `A + B → a + b` — opposite strong tokens **cancel**;
//! * `A + b → A + a`, `B + a → B + b` — a strong token **converts** weak
//!   agents to its side;
//! * everything else is a no-op.
//!
//! Σv is conserved, so with #A > #B initially the B tokens are eventually
//! exhausted, after which the surviving A tokens convert every weak agent
//! to `a` and the population stabilizes with every agent outputting the A
//! side — *regardless of how small the initial margin was* (exact
//! majority). The price is speed: with margin δ the cancellation phase
//! takes Θ(n²/δ · log n)-ish interactions, which is the slow-without-bias
//! behaviour the experiment suite contrasts with USD.
//!
//! A tie (#A = #B) cancels every token; the all-weak configurations are
//! then stable but mixed — the protocol cannot decide ties (known
//! limitation of the 4-state protocol).

use pop_proto::Protocol;

/// States of the four-state exact-majority protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FourState {
    /// Strong A token (+1).
    StrongA,
    /// Strong B token (−1).
    StrongB,
    /// Weak agent currently on the A side.
    WeakA,
    /// Weak agent currently on the B side.
    WeakB,
}

/// The side an agent outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MajoritySide {
    /// The A side.
    A,
    /// The B side.
    B,
}

/// The protocol object (stateless; all information is in agent states).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FourStateMajority;

impl FourStateMajority {
    /// Dense index of [`FourState::StrongA`].
    pub const STRONG_A: usize = 0;
    /// Dense index of [`FourState::StrongB`].
    pub const STRONG_B: usize = 1;
    /// Dense index of [`FourState::WeakA`].
    pub const WEAK_A: usize = 2;
    /// Dense index of [`FourState::WeakB`].
    pub const WEAK_B: usize = 3;

    /// The conserved signed token sum of a count configuration.
    pub fn signed_sum(counts: &[u64]) -> i64 {
        counts[Self::STRONG_A] as i64 - counts[Self::STRONG_B] as i64
    }

    /// The output tally `(a_side, b_side)` of a count configuration.
    pub fn sides(counts: &[u64]) -> (u64, u64) {
        (
            counts[Self::STRONG_A] + counts[Self::WEAK_A],
            counts[Self::STRONG_B] + counts[Self::WEAK_B],
        )
    }
}

impl Protocol for FourStateMajority {
    type State = FourState;
    type Output = MajoritySide;

    fn num_states(&self) -> usize {
        4
    }

    fn index_of(&self, s: FourState) -> usize {
        match s {
            FourState::StrongA => Self::STRONG_A,
            FourState::StrongB => Self::STRONG_B,
            FourState::WeakA => Self::WEAK_A,
            FourState::WeakB => Self::WEAK_B,
        }
    }

    fn state_of(&self, index: usize) -> FourState {
        match index {
            Self::STRONG_A => FourState::StrongA,
            Self::STRONG_B => FourState::StrongB,
            Self::WEAK_A => FourState::WeakA,
            Self::WEAK_B => FourState::WeakB,
            _ => panic!("four-state protocol has 4 states, got {index}"),
        }
    }

    fn transition(&self, x: FourState, y: FourState) -> (FourState, FourState) {
        use FourState::*;
        match (x, y) {
            // Cancellation.
            (StrongA, StrongB) => (WeakA, WeakB),
            (StrongB, StrongA) => (WeakB, WeakA),
            // Conversion.
            (StrongA, WeakB) => (StrongA, WeakA),
            (WeakB, StrongA) => (WeakA, StrongA),
            (StrongB, WeakA) => (StrongB, WeakB),
            (WeakA, StrongB) => (WeakB, StrongB),
            other => other,
        }
    }

    fn output(&self, s: FourState) -> MajoritySide {
        match s {
            FourState::StrongA | FourState::WeakA => MajoritySide::A,
            FourState::StrongB | FourState::WeakB => MajoritySide::B,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_proto::{CountConfig, CountSimulator};
    use sim_stats::rng::SimRng;

    fn initial(a: u64, b: u64) -> CountConfig {
        CountConfig::from_counts(vec![a, b, 0, 0])
    }

    #[test]
    fn signed_sum_conserved_under_all_transitions() {
        let p = FourStateMajority;
        for x in 0..4 {
            for y in 0..4 {
                let mut counts = [5u64, 5, 5, 5];
                let (tx, ty) = p.transition_indices(x, y);
                counts[x] -= 1;
                counts[y] -= 1;
                counts[tx] += 1;
                counts[ty] += 1;
                assert_eq!(
                    FourStateMajority::signed_sum(&counts),
                    0,
                    "pair ({x},{y}) broke conservation"
                );
            }
        }
    }

    #[test]
    fn exact_majority_with_tiny_margin() {
        // Margin of exactly 1: USD would fail w.c.p., the 4-state protocol
        // must always get it right (given enough time).
        for seed in 0..5 {
            let mut sim = CountSimulator::new(FourStateMajority, &initial(26, 25));
            let mut rng = SimRng::new(seed);
            sim.run(&mut rng, 50_000_000, |s| s.is_silent());
            assert!(sim.is_silent(), "did not stabilize (seed {seed})");
            let counts = sim.counts();
            let (a_side, b_side) = FourStateMajority::sides(counts);
            assert_eq!(a_side, 51, "A side must win (seed {seed})");
            assert_eq!(b_side, 0);
            // One surviving strong A token.
            assert_eq!(counts[FourStateMajority::STRONG_A], 1);
            assert_eq!(counts[FourStateMajority::STRONG_B], 0);
        }
    }

    #[test]
    fn b_majority_wins_symmetrically() {
        let mut sim = CountSimulator::new(FourStateMajority, &initial(10, 40));
        let mut rng = SimRng::new(42);
        sim.run(&mut rng, 50_000_000, |s| s.is_silent());
        let (a_side, b_side) = FourStateMajority::sides(sim.counts());
        assert_eq!(b_side, 50);
        assert_eq!(a_side, 0);
    }

    #[test]
    fn tie_cancels_all_tokens() {
        let mut sim = CountSimulator::new(FourStateMajority, &initial(20, 20));
        let mut rng = SimRng::new(7);
        // Run until no strong tokens remain (the tie endpoint).
        sim.run(&mut rng, 50_000_000, |s| {
            s.counts()[FourStateMajority::STRONG_A] == 0
                && s.counts()[FourStateMajority::STRONG_B] == 0
        });
        assert_eq!(sim.counts()[FourStateMajority::STRONG_A], 0);
        assert_eq!(sim.counts()[FourStateMajority::STRONG_B], 0);
        // All-weak configurations are silent (no rule applies).
        assert!(sim.is_silent());
    }

    #[test]
    fn conversion_rules() {
        use FourState::*;
        let p = FourStateMajority;
        assert_eq!(p.transition(StrongA, WeakB), (StrongA, WeakA));
        assert_eq!(p.transition(WeakB, StrongA), (WeakA, StrongA));
        assert_eq!(p.transition(StrongB, WeakA), (StrongB, WeakB));
        // Weak agents never convert each other.
        assert_eq!(p.transition(WeakA, WeakB), (WeakA, WeakB));
    }

    #[test]
    fn outputs() {
        let p = FourStateMajority;
        assert_eq!(p.output(FourState::StrongA), MajoritySide::A);
        assert_eq!(p.output(FourState::WeakA), MajoritySide::A);
        assert_eq!(p.output(FourState::StrongB), MajoritySide::B);
        assert_eq!(p.output(FourState::WeakB), MajoritySide::B);
    }

    #[test]
    fn index_roundtrip() {
        let p = FourStateMajority;
        for i in 0..4 {
            assert_eq!(p.index_of(p.state_of(i)), i);
        }
    }
}
