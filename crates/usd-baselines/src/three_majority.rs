//! 3-majority dynamics in the synchronous Gossip model.
//!
//! Each round, every node samples **two** uniformly random other nodes and
//! updates to the majority opinion among {own, sample₁, sample₂}; with all
//! three distinct it keeps its own opinion (equivalently: it adopts the
//! sampled opinion iff the two samples agree). A classic plurality
//! dynamics with no extra state, widely compared against USD in the
//! plurality-consensus literature.

use sim_stats::rng::SimRng;
use usd_core::UsdConfig;

/// Synchronous 3-majority simulator (per-node, exact).
#[derive(Debug, Clone)]
pub struct ThreeMajority {
    states: Vec<u32>,
    k: usize,
    rounds: u64,
}

impl ThreeMajority {
    /// Initialize from a fully decided configuration (3-majority has no
    /// undecided state; `config.u()` must be 0).
    pub fn new(config: &UsdConfig) -> Self {
        assert_eq!(config.u(), 0, "3-majority has no undecided state");
        assert!(config.n() >= 3, "need at least 3 agents");
        assert!(config.n() <= u32::MAX as u64, "population too large");
        let mut states = Vec::with_capacity(config.n() as usize);
        for (i, &c) in config.opinions().iter().enumerate() {
            states.extend(std::iter::repeat_n(i as u32, c as usize));
        }
        ThreeMajority {
            states,
            k: config.k(),
            rounds: 0,
        }
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        self.states.len() as u64
    }

    /// Rounds simulated.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Current configuration (u is always 0).
    pub fn config(&self) -> UsdConfig {
        let mut x = vec![0u64; self.k];
        for &s in &self.states {
            x[s as usize] += 1;
        }
        UsdConfig::decided(x)
    }

    /// Whether all nodes agree.
    pub fn is_consensus(&self) -> bool {
        let first = self.states[0];
        self.states.iter().all(|&s| s == first)
    }

    /// The consensus opinion, if reached.
    pub fn winner(&self) -> Option<usize> {
        self.is_consensus().then_some(self.states[0] as usize)
    }

    /// Run one synchronous round.
    pub fn round(&mut self, rng: &mut SimRng) {
        let n = self.states.len();
        let old = self.states.clone();
        for i in 0..n {
            let s1 = old[Self::other_index(rng, n, i)];
            let s2 = old[Self::other_index(rng, n, i)];
            // Majority of {own, s1, s2}: own unless the samples agree
            // against it.
            if s1 == s2 {
                self.states[i] = s1;
            }
        }
        self.rounds += 1;
    }

    #[inline]
    fn other_index(rng: &mut SimRng, n: usize, i: usize) -> usize {
        let mut j = rng.index(n - 1);
        if j >= i {
            j += 1;
        }
        j
    }

    /// Run until consensus or `max_rounds`; returns `(rounds_run, done)`.
    pub fn run(&mut self, rng: &mut SimRng, max_rounds: u64) -> (u64, bool) {
        let start = self.rounds;
        while self.rounds - start < max_rounds {
            if self.is_consensus() {
                return (self.rounds - start, true);
            }
            self.round(rng);
        }
        (self.rounds - start, self.is_consensus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_conserves_population() {
        let mut sim = ThreeMajority::new(&UsdConfig::decided(vec![30, 40, 30]));
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            sim.round(&mut rng);
            assert_eq!(sim.config().n(), 100);
        }
    }

    #[test]
    fn plurality_wins_with_clear_bias() {
        let mut wins = 0;
        for seed in 0..10 {
            let mut sim = ThreeMajority::new(&UsdConfig::decided(vec![500, 250, 250]));
            let mut rng = SimRng::new(seed);
            let (rounds, done) = sim.run(&mut rng, 10_000);
            assert!(done, "no consensus (seed {seed})");
            assert!(rounds < 500);
            if sim.winner() == Some(0) {
                wins += 1;
            }
        }
        assert!(wins >= 9, "plurality won only {wins}/10");
    }

    #[test]
    fn consensus_fast_for_two_opinions() {
        // 3-majority converges in O(log n) rounds for k=2 with bias.
        let mut sim = ThreeMajority::new(&UsdConfig::decided(vec![600, 400]));
        let mut rng = SimRng::new(5);
        let (rounds, done) = sim.run(&mut rng, 1_000);
        assert!(done);
        assert!(rounds < 100, "took {rounds} rounds");
    }

    #[test]
    fn update_rule_adopts_only_agreeing_samples() {
        // Construct a deterministic check of the rule itself on a
        // 3-node instance where both samples are forced.
        let mut sim = ThreeMajority::new(&UsdConfig::decided(vec![1, 2]));
        // states = [0, 1, 1]; node 0 samples from {1, 2} → both opinion 1,
        // so after one round node 0 must flip.
        let mut rng = SimRng::new(2);
        sim.round(&mut rng);
        assert_eq!(sim.states[0], 1);
        assert!(sim.is_consensus());
    }

    #[test]
    fn consensus_is_absorbing() {
        let mut sim = ThreeMajority::new(&UsdConfig::decided(vec![10, 0]));
        let mut rng = SimRng::new(3);
        assert!(sim.is_consensus());
        sim.round(&mut rng);
        assert_eq!(sim.winner(), Some(0));
    }

    #[test]
    #[should_panic(expected = "no undecided state")]
    fn undecided_input_rejected() {
        ThreeMajority::new(&UsdConfig::new(vec![5, 5], 2));
    }
}
