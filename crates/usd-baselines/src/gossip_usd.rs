//! Undecided State Dynamics in the synchronous **Gossip model**.
//!
//! In the Gossip (aka PULL) model, time proceeds in synchronous rounds: in
//! each round, *every* node independently samples one uniformly random
//! other node and updates its own state from the pair (own, sampled),
//! all updates applied simultaneously. For USD:
//!
//! * decided(i) pulls decided(j ≠ i) → becomes undecided;
//! * undecided pulls decided(j) → adopts j;
//! * otherwise unchanged.
//!
//! Becchetti et al. (SODA '15) proved stabilization in O(md(c)·log n)
//! rounds w.h.p., where md(c) is the monochromatic distance. The paper
//! (§1.2) stresses that the population-protocol USD behaves *qualitatively
//! differently* — e.g. a node here changes opinion at most once per round,
//! whereas in the PP model a node can flip Ω(log n) times within n
//! interactions. [`GossipUsd::max_flips_last_round`] exposes exactly that
//! statistic for the comparison experiment (E9).

use sim_stats::rng::SimRng;
use usd_core::UsdConfig;

/// Synchronous Gossip-model USD simulator (per-node, exact).
#[derive(Debug, Clone)]
pub struct GossipUsd {
    /// Per-node state: opinion index in `0..k`, or `k` for undecided.
    states: Vec<u32>,
    k: usize,
    rounds: u64,
    flips_last_round: u64,
}

impl GossipUsd {
    /// Initialize from a configuration; agents are laid out in state blocks
    /// (irrelevant for the mean-field dynamics, as partners are uniform).
    pub fn new(config: &UsdConfig) -> Self {
        assert!(config.n() >= 2, "need at least 2 agents");
        assert!(config.n() <= u32::MAX as u64, "population too large");
        let k = config.k();
        let mut states = Vec::with_capacity(config.n() as usize);
        for (i, &c) in config.opinions().iter().enumerate() {
            states.extend(std::iter::repeat_n(i as u32, c as usize));
        }
        states.extend(std::iter::repeat_n(k as u32, config.u() as usize));
        GossipUsd {
            states,
            k,
            rounds: 0,
            flips_last_round: 0,
        }
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        self.states.len() as u64
    }

    /// Number of opinions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Rounds simulated.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of nodes that changed state in the most recent round.
    pub fn max_flips_last_round(&self) -> u64 {
        self.flips_last_round
    }

    /// Current configuration (O(n) tally).
    pub fn config(&self) -> UsdConfig {
        let mut x = vec![0u64; self.k];
        let mut u = 0u64;
        for &s in &self.states {
            if (s as usize) < self.k {
                x[s as usize] += 1;
            } else {
                u += 1;
            }
        }
        UsdConfig::new(x, u)
    }

    /// Whether the configuration is silent (consensus or all-undecided).
    pub fn is_silent(&self) -> bool {
        let first = self.states[0];
        self.states.iter().all(|&s| s == first)
    }

    /// Run one synchronous round; returns the number of nodes that changed.
    pub fn round(&mut self, rng: &mut SimRng) -> u64 {
        let n = self.states.len();
        let old = self.states.clone();
        let undecided = self.k as u32;
        let mut flips = 0u64;
        for i in 0..n {
            // Uniform random *other* node.
            let mut j = rng.index(n - 1);
            if j >= i {
                j += 1;
            }
            let own = old[i];
            let other = old[j];
            let new = if own == undecided {
                if other != undecided {
                    other // adopt
                } else {
                    own
                }
            } else if other != undecided && other != own {
                undecided // clash
            } else {
                own
            };
            if new != own {
                flips += 1;
            }
            self.states[i] = new;
        }
        self.rounds += 1;
        self.flips_last_round = flips;
        flips
    }

    /// Run until silent or `max_rounds`; returns `(rounds_run, silent)`.
    pub fn run(&mut self, rng: &mut SimRng, max_rounds: u64) -> (u64, bool) {
        let start = self.rounds;
        while self.rounds - start < max_rounds {
            if self.is_silent() {
                return (self.rounds - start, true);
            }
            self.round(rng);
        }
        (self.rounds - start, self.is_silent())
    }

    /// The consensus winner, if any.
    pub fn winner(&self) -> Option<usize> {
        let first = self.states[0];
        if (first as usize) < self.k && self.states.iter().all(|&s| s == first) {
            Some(first as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usd_core::analysis::monochromatic_distance;

    #[test]
    fn round_conserves_population() {
        let mut sim = GossipUsd::new(&UsdConfig::decided(vec![40, 30, 30]));
        let mut rng = SimRng::new(1);
        for _ in 0..20 {
            sim.round(&mut rng);
            assert_eq!(sim.config().n(), 100);
        }
    }

    #[test]
    fn biased_two_opinions_stabilize_to_majority() {
        let mut wins = 0;
        for seed in 0..10 {
            let mut sim = GossipUsd::new(&UsdConfig::decided(vec![700, 300]));
            let mut rng = SimRng::new(seed);
            let (rounds, silent) = sim.run(&mut rng, 10_000);
            assert!(silent, "did not stabilize");
            assert!(rounds < 1_000);
            if sim.winner() == Some(0) {
                wins += 1;
            }
        }
        assert!(wins >= 9, "majority won only {wins}/10");
    }

    #[test]
    fn gossip_stabilization_scales_with_md_times_log_n() {
        // Becchetti et al.: O(md(c) log n) rounds. For a balanced k-opinion
        // start md = k; check rounds stay within a generous constant of
        // k·ln n.
        let n = 2_000u64;
        let k = 5usize;
        let cfg = UsdConfig::decided(vec![n / k as u64; k]);
        let md = monochromatic_distance(&cfg);
        assert!((md - k as f64).abs() < 1e-9);
        let mut total_rounds = 0u64;
        let reps = 5;
        for seed in 0..reps {
            let mut sim = GossipUsd::new(&cfg);
            let mut rng = SimRng::new(seed);
            let (rounds, silent) = sim.run(&mut rng, 100_000);
            assert!(silent);
            total_rounds += rounds;
        }
        let mean = total_rounds as f64 / reps as f64;
        let scale = md * (n as f64).ln(); // ≈ 38
        assert!(
            mean < 20.0 * scale,
            "mean rounds {mean} far above md·ln n = {scale}"
        );
    }

    #[test]
    fn each_node_flips_at_most_once_per_round() {
        // Definitional in the Gossip model: flips ≤ n per round; and the
        // flip counter matches an independent diff.
        let mut sim = GossipUsd::new(&UsdConfig::decided(vec![50, 50]));
        let mut rng = SimRng::new(3);
        let before = sim.states.clone();
        let flips = sim.round(&mut rng);
        let diff = before
            .iter()
            .zip(&sim.states)
            .filter(|(a, b)| a != b)
            .count() as u64;
        assert_eq!(flips, diff);
        assert!(flips <= 100);
        assert_eq!(sim.max_flips_last_round(), flips);
    }

    #[test]
    fn all_undecided_is_absorbing() {
        let mut sim = GossipUsd::new(&UsdConfig::new(vec![0, 0], 20));
        let mut rng = SimRng::new(4);
        assert!(sim.is_silent());
        sim.round(&mut rng);
        assert_eq!(sim.config().u(), 20);
    }

    #[test]
    fn winner_none_while_running() {
        let sim = GossipUsd::new(&UsdConfig::decided(vec![10, 10]));
        assert_eq!(sim.winner(), None);
        assert!(!sim.is_silent());
    }
}
