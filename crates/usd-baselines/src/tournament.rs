//! Elimination-tournament USD: an idealized answer to the paper's open
//! question.
//!
//! The conclusion (§4) asks: *"it would be interesting to explore
//! scenarios where (slightly) more memory is available at the nodes and
//! where synchronization is possible to some extent: at which point can
//! we break the lower bound barrier?"*
//!
//! This module implements the natural candidate with **perfect phase
//! synchronization** and O(log k) extra bits per node: a binary
//! elimination tournament. The surviving opinions are paired up; in each
//! phase, every pair (a, b) runs a *two-opinion* USD among the agents
//! currently assigned to that pair (supporters of a, supporters of b, and
//! an equal share of previously eliminated agents acting as undecided
//! helpers). Pairs are disjoint, so all matches of a phase run in
//! parallel; each two-opinion match stabilizes in O(log n) parallel time
//! (Clementi et al.), giving **O(log k · log n)** total parallel time —
//! asymptotically below the Ω(k·log(√n/(k log n))) barrier that holds
//! without synchronization. Empirically (experiment E13) the *growth law*
//! in k is indeed logarithmic, but the Θ(log n) dead-heat cost per phase
//! means plain USD's small constants win at simulable scales; the
//! asymptotic crossover requires k ≫ log² n inside the admissible regime.
//!
//! The synchronization is deliberately idealized (a global phase barrier;
//! in reality one would pay a phase-clock overhead as in Bankhamer et
//! al., SODA '22) — the point of experiment E13 is to quantify what
//! synchronization + memory buy, not to give a new protocol.

use sim_stats::rng::SimRng;
use usd_core::dynamics::{SequentialUsd, UsdSimulator};
use usd_core::UsdConfig;

/// Result of one tournament run.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentResult {
    /// The winning opinion (0-based index into the original k).
    pub winner: Option<usize>,
    /// Number of elimination phases run (⌈log₂ k⌉ for a full bracket).
    pub phases: u64,
    /// Parallel time consumed, defined as the sum over phases of the
    /// maximum match parallel-time in that phase (matches run in
    /// parallel on disjoint agents).
    pub parallel_time: f64,
    /// Total interactions across all matches (work, not span).
    pub total_interactions: u64,
}

/// Idealized synchronized elimination-tournament USD.
#[derive(Debug, Clone)]
pub struct TournamentUsd {
    config: UsdConfig,
    /// Per-match interaction budget factor (× sub-population · ln n).
    budget_factor: f64,
}

impl TournamentUsd {
    /// Set up a tournament from a fully decided configuration.
    pub fn new(config: UsdConfig) -> Self {
        assert_eq!(config.u(), 0, "tournament starts fully decided");
        assert!(config.n() >= 2);
        TournamentUsd {
            config,
            budget_factor: 200.0,
        }
    }

    /// Run the tournament to completion.
    pub fn run(&self, rng: &mut SimRng) -> TournamentResult {
        let n = self.config.n();
        // Survivors: (original opinion index, supporter count).
        let mut survivors: Vec<(usize, u64)> = self
            .config
            .opinions()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        // Pool of agents whose opinion has been eliminated; they join
        // matches as undecided helpers.
        let mut eliminated_pool: u64 = 0;
        let mut phases = 0u64;
        let mut parallel_time = 0.0f64;
        let mut total_interactions = 0u64;

        while survivors.len() > 1 {
            phases += 1;
            let matches = survivors.len() / 2;
            let byes = survivors.len() % 2;
            // Split the eliminated pool evenly across this phase's matches.
            let pool_share = if matches > 0 {
                eliminated_pool / matches as u64
            } else {
                0
            };
            let mut next_round: Vec<(usize, u64)> = Vec::with_capacity(matches + byes);
            let mut next_pool = eliminated_pool - pool_share * matches as u64;
            let mut phase_span = 0.0f64;

            for m in 0..matches {
                let (op_a, count_a) = survivors[2 * m];
                let (op_b, count_b) = survivors[2 * m + 1];
                let sub_n = count_a + count_b + pool_share;
                if sub_n < 2 {
                    // Degenerate micro-match: larger side advances.
                    let winner = if count_a >= count_b {
                        (op_a, count_a + count_b + pool_share)
                    } else {
                        (op_b, count_a + count_b + pool_share)
                    };
                    next_round.push(winner);
                    continue;
                }
                // Two-opinion USD on the sub-population.
                let sub_config = UsdConfig::new(vec![count_a, count_b], pool_share);
                let mut sim = SequentialUsd::new(&sub_config);
                let budget =
                    (self.budget_factor * sub_n as f64 * (n as f64).ln()).max(1_000.0) as u64;
                let (t, _stable) =
                    usd_core::dynamics::run_until_stable(&mut sim, rng, budget, |_, _| {});
                total_interactions += t;
                phase_span = phase_span.max(t as f64 / sub_n as f64);

                match sim.winner() {
                    Some(0) => next_round.push((op_a, sub_n)),
                    Some(1) => next_round.push((op_b, sub_n)),
                    _ => {
                        // All-undecided absorption or timeout: advance the
                        // currently larger side; its supporters keep their
                        // opinion, the rest feed the pool.
                        let (op, keep) = if sim.opinions()[0] >= sim.opinions()[1] {
                            (op_a, sim.opinions()[0])
                        } else {
                            (op_b, sim.opinions()[1])
                        };
                        next_round.push((op, keep.max(1)));
                        next_pool += sub_n - keep.max(1);
                    }
                }
            }
            if byes == 1 {
                next_round.push(survivors[survivors.len() - 1]);
            }
            parallel_time += phase_span;
            eliminated_pool = next_pool;
            survivors = next_round;
        }

        TournamentResult {
            winner: survivors.first().map(|&(op, _)| op),
            phases,
            parallel_time,
            total_interactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usd_core::init::InitialConfigBuilder;

    #[test]
    fn tournament_elects_the_plurality_with_bias() {
        let mut wins = 0;
        for seed in 0..10 {
            let config = InitialConfigBuilder::new(4_000, 8).figure1();
            let t = TournamentUsd::new(config);
            let mut rng = SimRng::new(seed);
            let result = t.run(&mut rng);
            assert_eq!(result.phases, 3); // ⌈log2 8⌉
            if result.winner == Some(0) {
                wins += 1;
            }
        }
        assert!(wins >= 8, "plurality won only {wins}/10 tournaments");
    }

    #[test]
    fn parallel_time_scales_as_log_k_log_n_not_k() {
        // The headline: at fixed n, doubling k adds one phase (~log n
        // parallel time) instead of multiplying the time by 2.
        let n = 4_000u64;
        let run_mean = |k: usize| {
            let mut total = 0.0;
            for seed in 0..5 {
                let config = InitialConfigBuilder::new(n, k).figure1();
                let t = TournamentUsd::new(config);
                let mut rng = SimRng::new(seed + 100);
                total += t.run(&mut rng).parallel_time;
            }
            total / 5.0
        };
        let t4 = run_mean(4);
        let t16 = run_mean(16);
        // Unsynchronized USD would scale ~4x from k=4 to k=16; the
        // tournament should scale ~2x (phases 2 → 4).
        let ratio = t16 / t4;
        assert!(
            ratio < 3.0,
            "tournament scaled by {ratio:.2} from k=4 to k=16; expected ~2"
        );
    }

    #[test]
    fn single_opinion_is_immediate() {
        let config = UsdConfig::decided(vec![100]);
        let t = TournamentUsd::new(config);
        let mut rng = SimRng::new(1);
        let result = t.run(&mut rng);
        assert_eq!(result.winner, Some(0));
        assert_eq!(result.phases, 0);
        assert_eq!(result.total_interactions, 0);
    }

    #[test]
    fn zero_support_opinions_never_win() {
        let config = UsdConfig::decided(vec![0, 500, 0, 300]);
        let t = TournamentUsd::new(config);
        let mut rng = SimRng::new(2);
        let result = t.run(&mut rng);
        assert!(matches!(result.winner, Some(1) | Some(3)));
    }

    #[test]
    fn odd_bracket_handles_byes() {
        let config = UsdConfig::decided(vec![400, 300, 300]);
        let t = TournamentUsd::new(config);
        let mut rng = SimRng::new(3);
        let result = t.run(&mut rng);
        assert!(result.winner.is_some());
        assert_eq!(result.phases, 2); // 3 → 2 → 1
    }

    #[test]
    #[should_panic(expected = "fully decided")]
    fn undecided_start_rejected() {
        TournamentUsd::new(UsdConfig::new(vec![5, 5], 2));
    }
}
