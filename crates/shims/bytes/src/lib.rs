//! Offline shim for the `bytes` crate.
//!
//! Provides the minimal API surface `usd-core::encode` uses: [`BytesMut`]
//! with little-endian put methods, [`Bytes`] with `slice`/`from_static`,
//! and the [`Buf`] reader trait. Backed by plain `Vec<u8>` (no refcounted
//! zero-copy splitting); semantics match `bytes 1.x` for this subset.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out a sub-range as a new `Bytes`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound::*;
        let start = match range.start_bound() {
            Included(&s) => s,
            Excluded(&s) => s + 1,
            Unbounded => 0,
        };
        let end = match range.end_bound() {
            Included(&e) => e + 1,
            Excluded(&e) => e,
            Unbounded => self.data.len(),
        };
        Bytes {
            data: self.data[start..end].to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

/// A growable byte buffer with little-endian append methods.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Pre-allocate `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

/// Little-endian appender onto a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, v: &[u8]);

    /// Append a `u16` little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, v: &[u8]) {
        self.data.extend_from_slice(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Sequential little-endian reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read `cnt` bytes into `dst` (panics if not enough remain).
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underrun");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Cursor state for reading an owned [`Bytes`].
impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.data.len(), "buffer underrun");
        dst.copy_from_slice(&self.data[..dst.len()]);
        self.data.drain(..dst.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(14);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u16_le(7);
        b.put_u64_le(u64::MAX - 3);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 14);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_buf_consumes_from_front() {
        let mut b = Bytes::from(vec![1, 0, 2, 0]);
        assert_eq!(b.get_u16_le(), 1);
        assert_eq!(b.get_u16_le(), 2);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_and_indexing() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(&b.slice(1..4)[..], &[2, 3, 4]);
        assert_eq!(&b.slice(..2)[..], &[1, 2]);
        assert_eq!(b[4], 5);
    }

    #[test]
    fn bytes_mut_is_mutable_slice() {
        let mut b = BytesMut::from(&[9u8, 8, 7][..]);
        b[0] ^= 0xFF;
        assert_eq!(b[0], 0xF6);
    }
}
