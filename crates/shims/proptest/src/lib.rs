//! Offline shim for the `proptest` crate.
//!
//! A deterministic property-testing harness exposing the subset of the
//! proptest 1.x API this workspace's test suites use: the [`proptest!`]
//! macro, `prop_assert*` / `prop_assume!`, [`strategy::Strategy`] with
//! `prop_map` / `prop_filter` / `prop_flat_map`, range and tuple strategies,
//! [`arbitrary::any`], [`collection::vec`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate: cases are generated from a seed derived
//! from the test's module path (fully deterministic, no persistence file)
//! and failing inputs are **not shrunk** — the panic message carries the
//! generated values' `Debug` rendering instead. Swap the workspace path
//! dependency for the real `proptest` to get shrinking.

#![forbid(unsafe_code)]

/// Deterministic RNG and test-case plumbing used by the generated tests.
pub mod test_runner {
    /// SplitMix64-based generator seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive a generator from a test identifier (e.g. module path).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test panics with this message.
        Fail(String),
        /// `prop_assume!` rejected the input; the case is not counted.
        Reject,
    }

    /// Result type the generated test-case closures return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (only the case count is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Run `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest there is no value tree / shrinking: a
    /// strategy just produces a value from the RNG.
    pub trait Strategy {
        /// The generated value type.
        type Value: std::fmt::Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Reject values failing `pred` (retrying internally).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }

        /// Generate an intermediate value, then generate from the strategy
        /// it maps to.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 candidates", self.whence);
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $wide:ty),+ $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as $wide).wrapping_add(draw as $wide) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as $wide).wrapping_sub(start as $wide) as u128;
                    if span == u128::MAX {
                        return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t;
                    }
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % (span + 1);
                    (start as $wide).wrapping_add(draw as $wide) as $t
                }
            }
        )+};
    }

    int_range_strategy!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
    );

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (a, b) => $crate::prop_assert!(*a == *b, "{:?} != {:?}", a, b),
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (a, b) => $crate::prop_assert!(
                *a == *b,
                "{:?} != {:?}: {}", a, b, format!($($fmt)+)
            ),
        }
    };
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (a, b) => $crate::prop_assert!(*a != *b, "{:?} == {:?}", a, b),
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (a, b) => $crate::prop_assert!(
                *a != *b,
                "{:?} == {:?}: {}", a, b, format!($($fmt)+)
            ),
        }
    };
}

/// Skip the current case (without counting it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(64).max(1024),
                    "property {}: too many rejected cases",
                    stringify!($name)
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed after {} cases: {}",
                            stringify!($name), accepted, msg);
                    }
                }
            }
        }
        $crate::__proptest_items!{ @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4, z in -5i64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0u64..100, 2..20),
            (a, b) in (1usize..4).prop_flat_map(|k| (crate::strategy::Just(k), 0usize..4)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!((1..4).contains(&a));
            prop_assert!(b < 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 999);
        }

        #[test]
        fn filter_and_map_apply(x in (0u64..100).prop_filter("even", |v| v % 2 == 0).prop_map(|v| v + 1)) {
            prop_assert_eq!(x % 2, 1);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    // No #[test] attribute: the macro emits a plain fn we invoke below to
    // check that a failing property panics with the expected message.
    proptest! {
        fn always_fails(x in 0u64..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        always_fails();
    }
}
