//! Offline shim for the `rand` crate.
//!
//! The workspace builds in a container without registry access, so this
//! local crate provides exactly the trait surface `sim-stats` implements
//! ([`RngCore`], [`SeedableRng`]). Replace the `path` dependency in the
//! workspace manifest with the real `rand` to get the full API; the trait
//! signatures below match `rand 0.8`.

#![forbid(unsafe_code)]

/// A random number generator core: raw 32/64-bit output plus byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array in practice).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by zero-extending it into the seed bytes.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = state.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dst: &mut [u8]) {
            for b in dst {
                *b = self.next_u64() as u8;
            }
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_roundtrips_small_seeds() {
        let c = Counter::seed_from_u64(7);
        assert_eq!(c.0, 7);
    }

    #[test]
    fn fill_bytes_advances() {
        let mut c = Counter(0);
        let mut buf = [0u8; 3];
        c.fill_bytes(&mut buf);
        assert_eq!(buf, [1, 2, 3]);
    }
}
