//! Offline shim for the `criterion` crate.
//!
//! A wall-clock micro-benchmark harness exposing the subset of the
//! criterion 0.5 API this workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `SamplingMode`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark is warmed up briefly, then timed over a
//! handful of measurement passes whose iteration count is calibrated so a
//! pass takes a measurable amount of time; the median pass is reported,
//! along with derived throughput when the group declared one. Results print
//! to stdout — there is no statistical regression machinery here; use the
//! real criterion (swap the workspace path dependency) for that.
//!
//! Honors `CRITERION_SHIM_QUICK=1` to run a single short pass per bench,
//! which CI uses as a smoke test.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared per-iteration work, used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Sampling strategy. The shim treats both modes the same; the variant is
/// accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Criterion's automatic mode.
    Auto,
    /// Flat sampling for long-running benches.
    Flat,
    /// Linear sampling.
    Linear,
}

/// A two-part benchmark identifier: function name and parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }

    /// Id with only a parameter component.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: &'a mut u64,
    quick: bool,
}

impl Bencher<'_> {
    /// Time `routine`, recording calibrated measurement passes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-pass iteration count until one pass takes
        // at least ~5 ms (or a single iteration dominates).
        let target = if self.quick {
            Duration::from_millis(1)
        } else {
            Duration::from_millis(5)
        };
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                *self.iters_per_sample = iters;
                self.samples.push(elapsed);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let passes = if self.quick { 1 } else { 4 };
        for _ in 0..passes {
            let iters = *self.iters_per_sample;
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    quick: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim chooses its own pass count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run(id.to_string(), |b| f(b));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher<'_>)) {
        let mut samples = Vec::new();
        let mut iters_per_sample = 1u64;
        let mut bencher = Bencher {
            samples: &mut samples,
            iters_per_sample: &mut iters_per_sample,
            quick: self.quick,
        };
        f(&mut bencher);
        if samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let per_iter = median.as_secs_f64() / iters_per_sample as f64;
        let mut line = format!(
            "{}/{id}: {} per iter ({iters_per_sample} iters/pass, {} passes)",
            self.name,
            fmt_duration(per_iter),
            samples.len()
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                let rate = n as f64 / per_iter;
                line.push_str(&format!(", {} elem/s", fmt_rate(rate)));
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                let rate = n as f64 / per_iter;
                line.push_str(&format!(", {} B/s", fmt_rate(rate)));
            }
            _ => {}
        }
        println!("{line}");
    }

    /// End the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: std::env::var("CRITERION_SHIM_QUICK")
                .map(|v| v == "1")
                .unwrap_or(false),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let quick = self.quick;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            quick,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Mirror of `criterion_group!`: bundles bench functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: emits `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn group_runs_and_reports() {
        std::env::set_var("CRITERION_SHIM_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(2.0).ends_with(" s"));
        assert!(fmt_duration(2e-3).ends_with(" ms"));
        assert!(fmt_duration(2e-6).ends_with(" µs"));
        assert!(fmt_duration(2e-9).ends_with(" ns"));
        assert_eq!(fmt_rate(2.5e9), "2.50G");
    }
}
