//! # plurality-consensus
//!
//! A production-quality Rust reproduction of
//! *"An Almost Tight Lower Bound for Plurality Consensus with Undecided
//! State Dynamics in the Population Protocol Model"*
//! (El-Hayek, Elsässer, Schmid — PODC 2025, arXiv:2505.02765).
//!
//! The workspace implements, from scratch:
//!
//! * a generic **population-protocol substrate** ([`pop_proto`]) —
//!   protocols, schedulers (uniform clique and graph-restricted), seeded
//!   interaction-graph family generators (cycle, torus, hypercube, random
//!   regular, Erdős–Rényi), and four exact simulators including the
//!   batch-leaping clique engine and the active-edge graph engine;
//! * the **Undecided State Dynamics** and its full analysis toolkit
//!   ([`usd_core`]) — the paper's object of study, including the exact
//!   one-step drifts, thresholds, and bound curves from the proof;
//! * the **drift-analysis machinery** the proof uses ([`drift_analysis`]) —
//!   Lemma 3.2's coupled lazy walks, the Oliveto–Witt negative-drift
//!   theorem, Bernstein tails, hitting-time estimation;
//! * **baseline protocols** ([`usd_baselines`]) — four-state exact
//!   majority, voter dynamics, 3-majority, Gossip-model and synchronized
//!   USD;
//! * an **experiment harness** ([`usd_experiments`]) regenerating every
//!   figure and quantitative claim (DESIGN.md lists the experiment index);
//! * shared **statistics utilities** ([`sim_stats`]).
//!
//! ## Quickstart
//!
//! ```
//! use plurality_consensus::prelude::*;
//!
//! // n = 10,000 agents, k = 6 opinions, the paper's Figure-1 bias.
//! let config = InitialConfigBuilder::new(10_000, 6).figure1();
//! let mut sim = SkipAheadUsd::new(&config);
//! let mut rng = SimRng::new(42);
//! let result = stabilize(&mut sim, &mut rng, u64::MAX / 2);
//! assert!(result.stabilized());
//! // With bias sqrt(n ln n), the initial plurality wins w.h.p.
//! assert!(result.plurality_won());
//! println!("stabilized in {:.1} parallel time", result.parallel_time(10_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use drift_analysis;
pub use pop_proto;
pub use sim_stats;
pub use usd_baselines;
pub use usd_core;
pub use usd_experiments;

/// One-stop imports for the common simulation workflow.
pub mod prelude {
    pub use pop_proto::topology::TopologyFamily;
    pub use sim_stats::rng::{RngFactory, SimRng};
    pub use usd_core::analysis::{
        expected_gap_drift, expected_undecided_drift, monochromatic_distance, undecided_plateau,
    };
    pub use usd_core::backend::Backend;
    #[allow(deprecated)]
    pub use usd_core::backend::{stabilize_on_topology, stabilize_with_backend};
    pub use usd_core::dynamics::{
        run_until_stable, SequentialUsd, SkipAheadUsd, UsdEvent, UsdSimulator,
    };
    pub use usd_core::init::InitialConfigBuilder;
    pub use usd_core::protocol::{UndecidedStateDynamics, UsdState};
    pub use usd_core::runspec::{EnsembleOutcome, LaneOutcome, RunSpec, DEFAULT_REPLICAS};
    pub use usd_core::stabilization::{stabilize, ConsensusOutcome, StabilizationResult};
    pub use usd_core::theory::Bounds;
    pub use usd_core::UsdConfig;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let config = InitialConfigBuilder::new(2_000, 4).figure1();
        let mut sim = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(7);
        let result = stabilize(&mut sim, &mut rng, u64::MAX / 2);
        assert!(result.stabilized());
    }
}
